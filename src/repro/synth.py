"""Synthesis: BDDs back to gate-level netlists, and don't-care minimization.

Closing the loop from the symbolic world to circuits:

* :func:`bdd_to_gates` — emit a BDD as a shared multiplexer network
  inside a :class:`Circuit` (one mux per internal node, simplified at
  constant children, shared nodes emitted once);
* :func:`resynthesize` — rebuild a circuit's next-state and output
  logic from its transition BDDs;
* :func:`minimize_with_reachability` — the classic application of
  reachability analysis to logic optimization: states outside the
  reachable set are don't-cares, so each next-state function can be
  minimized against the reached characteristic function with the
  Coudert-Madre ``restrict`` operator.  The result is *sequentially
  equivalent from reset* (verified with our own equivalence checker in
  the tests), often with a smaller BDD footprint.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .bdd import BDD
from .circuits.netlist import Circuit
from .errors import ReproError
from .reach.common import ReachLimits, ReachSpace
from .reach.tr_engine import tr_reachability
from .sim.symbolic import SymbolicSimulator


def bdd_to_gates(
    bdd: BDD,
    node: int,
    circuit: Circuit,
    net_of_var: Dict[int, str],
    prefix: str,
    memo: Optional[Dict[int, Tuple[str, bool]]] = None,
) -> str:
    """Emit ``node`` as gates in ``circuit``; returns the output net.

    ``net_of_var`` maps BDD variable indices to circuit nets.  Shared
    BDD nodes become shared nets (pass one ``memo`` across calls to
    share across multiple roots).  Constant roots synthesize
    ``x AND NOT x`` style constants from an arbitrary mapped net.
    """
    if memo is None:
        memo = {}

    def net_for(current: int) -> Tuple[str, Optional[bool]]:
        """Net computing ``current``, or (None, constant) for terminals."""
        if current == bdd.false:
            return "", False
        if current == bdd.true:
            return "", True
        if current in memo:
            return memo[current][0], None
        var = bdd.node_var(current)
        if var not in net_of_var:
            raise ReproError(
                "BDD depends on unmapped variable %r" % bdd.var_name(var)
            )
        select = net_of_var[var]
        lo, hi = bdd.node_children(current)
        lo_net, lo_const = net_for(lo)
        hi_net, hi_const = net_for(hi)
        out = "%s_n%d" % (prefix, current)
        inverted = out + "_ns"
        # Simplified mux forms at constant children.
        if lo_const is False and hi_const is True:
            circuit.add_gate(out, "BUF", (select,))
        elif lo_const is True and hi_const is False:
            circuit.not_(out, select)
        elif hi_const is True:
            circuit.or_(out, select, lo_net)
        elif hi_const is False:
            circuit.not_(inverted, select)
            circuit.and_(out, inverted, lo_net)
        elif lo_const is True:
            circuit.not_(inverted, select)
            circuit.or_(out, inverted, hi_net)
        elif lo_const is False:
            circuit.and_(out, select, hi_net)
        else:
            circuit.not_(inverted, select)
            circuit.and_(out + "_a", select, hi_net)
            circuit.and_(out + "_b", inverted, lo_net)
            circuit.or_(out, out + "_a", out + "_b")
        memo[current] = (out, False)
        return out, None

    net, const = net_for(node)
    if const is None:
        return net
    # Constant root: synthesize from any mapped net.
    if not net_of_var:
        raise ReproError("cannot synthesize a constant with no nets")
    source = next(iter(net_of_var.values()))
    out = "%s_const%d" % (prefix, int(const))
    if out in circuit.gates:
        return out
    circuit.not_(out + "_inv", source)
    if const:
        circuit.or_(out, source, out + "_inv")
    else:
        circuit.and_(out, source, out + "_inv")
    return out


def resynthesize(
    circuit: Circuit,
    delta_overrides: Optional[Dict[str, int]] = None,
    space: Optional[ReachSpace] = None,
    name: Optional[str] = None,
) -> Circuit:
    """Rebuild ``circuit`` from its (optionally overridden) BDDs.

    Computes each latch's next-state function and each primary output
    as a BDD over the input/state variables, applies
    ``delta_overrides`` (state net -> replacement BDD), and emits a
    fresh netlist with the same interface and initial state.
    """
    if space is None:
        space = ReachSpace(circuit)
    bdd = space.bdd
    simulator = SymbolicSimulator(bdd, circuit)
    drivers = {net: bdd.var(v) for net, v in space.input_var.items()}
    drivers.update(
        {net: bdd.var(v) for net, v in space.state_var.items()}
    )
    values = simulator.evaluate_nets(drivers)
    overrides = delta_overrides or {}

    result = Circuit(name or (circuit.name + "_synth"))
    for net in circuit.inputs:
        result.add_input(net)
    for latch in circuit.latches.values():
        result.add_latch(latch.output, "synth_d_" + latch.output, latch.init)
    net_of_var: Dict[int, str] = {
        v: net for net, v in space.input_var.items()
    }
    net_of_var.update({v: net for net, v in space.state_var.items()})
    memo: Dict[int, Tuple[str, bool]] = {}
    for latch in circuit.latches.values():
        node = overrides.get(latch.output, values[latch.data])
        net = bdd_to_gates(
            bdd, node, result, net_of_var, "f_" + latch.output, memo
        )
        result.add_gate("synth_d_" + latch.output, "BUF", (net,))
    for out in circuit.outputs:
        if out in result.nets():
            # Output is an input or latch net: already present by name.
            result.add_output(out)
            continue
        node = values[out]
        net = bdd_to_gates(bdd, node, result, net_of_var, "o_" + out, memo)
        result.add_gate(out, "BUF", (net,))
        result.add_output(out)
    result.validate()
    return result


def minimize_with_reachability(
    circuit: Circuit,
    limits: Optional[ReachLimits] = None,
    name: Optional[str] = None,
) -> Tuple[Circuit, Dict[str, int]]:
    """Minimize next-state logic against the reachable-state care set.

    Runs (characteristic-function) reachability, then replaces every
    next-state BDD ``delta_i`` by ``restrict(delta_i, reached)`` —
    free to differ on unreachable states — and resynthesizes.  Returns
    the minimized circuit and a statistics dict with the summed BDD
    sizes before and after.

    The result is sequentially equivalent from reset: both machines
    start in the (reachable) initial state and their next-state
    functions agree on every reachable state, so the trajectories never
    diverge.
    """
    space = ReachSpace(circuit)
    bdd = space.bdd
    result = tr_reachability(
        circuit, limits=limits, count_states=False, space=space
    )
    if not result.completed:
        raise ReproError(
            "reachability did not complete (%s); cannot minimize"
            % result.status
        )
    reached = result.extra["reached_chi"]
    simulator = SymbolicSimulator(bdd, circuit)
    deltas = simulator.transition_functions(
        dict(space.input_var), dict(space.state_var)
    )
    by_net = dict(zip(circuit.latches, deltas))
    overrides: Dict[str, int] = {}
    before = after = 0
    for net, delta in by_net.items():
        minimized = bdd.restrict(delta, reached)
        before += bdd.dag_size(delta)
        after += bdd.dag_size(minimized)
        overrides[net] = minimized
    minimized_circuit = resynthesize(
        circuit,
        delta_overrides=overrides,
        space=space,
        name=name or (circuit.name + "_min"),
    )
    stats = {"bdd_size_before": before, "bdd_size_after": after}
    return minimized_circuit, stats

"""Value Change Dump (VCD) export for traces and simulations.

Counterexample traces from the model checker (and any concrete
simulation) can be written as IEEE 1364 VCD files and inspected in any
waveform viewer (GTKWave etc.) — the lingua franca for "show me the
bug" in hardware teams.

Only the widely supported subset is emitted: one timescale, scalar
wires, `$dumpvars` initialization and per-cycle value changes (a change
is emitted only when the value actually toggles).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TextIO

from .circuits.netlist import Circuit
from .errors import ReproError
from .sim.concrete import ConcreteSimulator

# Printable VCD identifier characters (IEEE 1364 section 18.2.1).
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifiers(count: int) -> List[str]:
    """Short unique VCD identifier codes."""
    codes: List[str] = []
    base = len(_ID_ALPHABET)
    for index in range(count):
        code = ""
        value = index
        while True:
            code = _ID_ALPHABET[value % base] + code
            value = value // base - 1
            if value < 0:
                break
        codes.append(code)
    return codes


def dump_waveform(
    handle: TextIO,
    signals: Dict[str, Sequence[bool]],
    module: str = "trace",
    timescale: str = "1 ns",
) -> None:
    """Write named boolean signal sequences as a VCD file.

    All sequences must have equal length; sample ``j`` is dumped at
    time ``j``.
    """
    lengths = {len(values) for values in signals.values()}
    if len(lengths) > 1:
        raise ReproError("signal sequences differ in length")
    steps = lengths.pop() if lengths else 0
    codes = _identifiers(len(signals))
    by_name = dict(zip(signals, codes))
    handle.write("$timescale %s $end\n" % timescale)
    handle.write("$scope module %s $end\n" % module)
    for name, code in by_name.items():
        handle.write("$var wire 1 %s %s $end\n" % (code, name))
    handle.write("$upscope $end\n$enddefinitions $end\n")
    previous: Dict[str, Optional[bool]] = {name: None for name in signals}
    for step in range(steps):
        changes = []
        for name, values in signals.items():
            value = bool(values[step])
            if previous[name] != value:
                changes.append("%d%s" % (int(value), by_name[name]))
                previous[name] = value
        if changes or step == 0:
            handle.write("#%d\n" % step)
            if step == 0:
                handle.write("$dumpvars\n")
            for change in changes:
                handle.write(change + "\n")
            if step == 0:
                handle.write("$end\n")
    handle.write("#%d\n" % steps)


def trace_to_vcd(
    circuit: Circuit,
    trace,
    handle: TextIO,
    include_outputs: bool = True,
) -> None:
    """Write a model-checker :class:`repro.mc.Trace` as a VCD waveform.

    Emits every primary input, every state net and (optionally) every
    primary output, replaying the trace on the concrete simulator to
    recover output values.  The final sample repeats the last inputs so
    the terminal state is visible for one full cycle.
    """
    simulator = ConcreteSimulator(circuit)
    declaration = list(circuit.latches)
    steps = len(trace.inputs)
    signals: Dict[str, List[bool]] = {}
    for net in circuit.inputs:
        signals["in." + net] = []
    for net in declaration:
        signals["state." + net] = []
    if include_outputs:
        for net in circuit.outputs:
            signals["out." + net] = []
    idle = {net: False for net in circuit.inputs}
    for step in range(steps + 1):
        inputs = trace.inputs[step] if step < steps else idle
        state_values = trace.states[step]
        state = tuple(state_values[net] for net in declaration)
        for net in circuit.inputs:
            signals["in." + net].append(bool(inputs[net]))
        for net in declaration:
            signals["state." + net].append(bool(state_values[net]))
        if include_outputs:
            outputs = simulator.outputs(state, inputs)
            for net in circuit.outputs:
                signals["out." + net].append(bool(outputs[net]))
    dump_waveform(handle, signals, module=circuit.name)


def save_trace(circuit: Circuit, trace, path: str) -> None:
    """Convenience wrapper: write a trace VCD to a file path."""
    with open(path, "w") as handle:
        trace_to_vcd(circuit, trace, handle)

"""Analysis test fixtures: guaranteed fault-plan cleanup."""

import pytest

from repro.harness import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    """Never let an armed fault plan leak into the next test."""
    yield
    faults.clear()

"""Seeded R201 defects: blocking calls inside ``async def`` bodies.

Lines carrying a seeded defect are marked ``# defect: RXXX``; the test
derives the expected (rule, line) set from the markers.
"""

import subprocess
import time


async def poll_with_sleep(client):
    while True:
        time.sleep(0.05)  # defect: R201
        data = await client.read()
        if not data:
            return data


async def shell_out(cmd):
    return subprocess.run(cmd)  # defect: R201


async def read_config(path):
    with open(path) as handle:  # defect: R201
        return handle.read()


async def take_lock(state):
    state.lock.acquire()  # defect: R201
    try:
        return state.value
    finally:
        state.lock.release()


async def clean_awaits(client):
    data = await client.fetch()
    async with client.lock:
        return data


def sync_sleep_is_fine():
    time.sleep(0.01)
    return True

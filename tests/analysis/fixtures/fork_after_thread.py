"""Seeded R203 defects: fork/spawn after non-daemon thread creation.

Lines carrying a seeded defect are marked ``# defect: RXXX``; the test
derives the expected (rule, line) set from the markers.
"""

import os
import threading


def fork_after_thread(work):
    worker = threading.Thread(target=work)
    worker.start()
    return os.fork()  # defect: R203


def fork_through_helper(work):
    worker = threading.Thread(target=work)
    worker.start()
    return _spawn_child()  # defect: R203


def _spawn_child():
    return os.fork()


def clean_daemon_then_fork(work):
    worker = threading.Thread(target=work, daemon=True)
    worker.start()
    return os.fork()


def clean_fork_before_thread(work):
    pid = os.fork()
    worker = threading.Thread(target=work)
    worker.start()
    return pid

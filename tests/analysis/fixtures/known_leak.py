"""Seeded R101 defects: incref'ed handles that never get released.

Lines carrying a seeded defect are marked ``# defect: RXXX``; the test
derives the expected (rule, line) set from those markers, so the exact
line numbers never need hand-maintenance.
"""


def leak_simple(bdd, a, b):
    tmp = bdd.and_(a, b)
    tmp = bdd.incref(tmp)  # defect: R101
    size = bdd.dag_size(tmp)
    return size


def leak_rebind(bdd, a, b):
    acc = bdd.incref(bdd.or_(a, b))
    acc = bdd.or_(acc, a)  # defect: R101
    bdd.decref(acc)
    return None


def unsound_conditional_leak(bdd, a, flag):
    # Known unsoundness (DESIGN.md §17): one path releases, the other
    # leaks — R101 stays quiet because a release on *any* path would
    # otherwise drown real engines' conditional-cleanup idioms in
    # false positives.  Deliberately NOT marked as a defect.
    tmp = bdd.incref(bdd.not_(a))
    if flag:
        bdd.decref(tmp)
    return None


def clean_move(bdd, a, b):
    acc = bdd.incref(bdd.or_(a, b))
    previous = acc
    acc = bdd.incref(bdd.and_(acc, a))
    bdd.decref(previous)
    bdd.decref(acc)
    return None


def clean_escape(bdd, a, b):
    out = bdd.incref(bdd.xor(a, b))
    return out


def clean_conditional(bdd, a, flag):
    tmp = bdd.incref(bdd.not_(a))
    if flag:
        bdd.decref(tmp)
        return None
    bdd.decref(tmp)
    return None

"""Seeded R102/R103/R104 defects: stale and double-released handles.

Lines carrying a seeded defect are marked ``# defect: RXXX``; the test
derives the expected (rule, line) set from the markers.
"""


class Monitor:
    """A stand-in RunMonitor whose checkpoint may transitively GC."""

    def __init__(self, bdd):
        self.bdd = bdd

    def checkpoint(self, roots):
        self.bdd.maybe_collect(roots)


def use_after_decref(bdd, a, b):
    tmp = bdd.incref(bdd.and_(a, b))
    bdd.decref(tmp)
    return bdd.dag_size(tmp)  # defect: R102


def double_release(bdd, a, b):
    tmp = bdd.incref(bdd.or_(a, b))
    bdd.decref(tmp)
    bdd.decref(tmp)  # defect: R103
    return None


def stale_across_gc(bdd, monitor, a, b):
    tmp = bdd.and_(a, b)
    monitor.checkpoint(())
    return bdd.dag_size(tmp)  # defect: R104


def clean_rooted_gc(bdd, monitor, a, b):
    tmp = bdd.and_(a, b)
    monitor.checkpoint((tmp,))
    return bdd.dag_size(tmp)


def clean_incref_across_gc(bdd, monitor, a, b):
    tmp = bdd.incref(bdd.and_(a, b))
    monitor.checkpoint(())
    size = bdd.dag_size(tmp)
    bdd.decref(tmp)
    return size


def clean_release_then_rebind(bdd, a, b):
    tmp = bdd.incref(bdd.and_(a, b))
    bdd.decref(tmp)
    tmp = bdd.or_(a, b)
    return bdd.dag_size(tmp)

"""Deep analyzer (R101-R104, R201-R204): fixtures, idioms, baseline.

The seeded-defect fixtures under ``fixtures/`` mark every intended
finding with a ``# defect: RXXX`` comment; each test asserts the exact
(rule, line) set both ways, so a missed defect *and* a false positive
both fail.  The repo sweep asserts ``lint --deep`` over ``src/repro``
is clean modulo the committed ``lint-baseline.json``.
"""

import json
import os
import re
import textwrap

from repro.analysis.dataflow import (
    DEEP_RULES,
    apply_baseline,
    deep_lint_sources,
    load_baseline,
    run_deep_lint,
    write_baseline,
)
from repro.analysis.lint import RULES, Finding

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

_DEFECT = re.compile(r"# defect: (R\d+)")


def fixture_results(name):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    findings = deep_lint_sources([(path, source)])
    return source, findings


def expected_defects(source):
    out = set()
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _DEFECT.search(line)
        if match:
            out.add((match.group(1), lineno))
    return out


def deep_rules_in(source, path="src/repro/reach/snippet.py"):
    return [
        (f.rule, f.line)
        for f in deep_lint_sources([(path, textwrap.dedent(source))])
    ]


# ----------------------------------------------------------------------
# Fixture sweeps: exact finding sets, zero false positives
# ----------------------------------------------------------------------


class TestFixtures:
    def assert_exact(self, name):
        source, findings = fixture_results(name)
        got = {(f.rule, f.line) for f in findings}
        assert got == expected_defects(source)

    def test_known_leak(self):
        self.assert_exact("known_leak.py")

    def test_use_after_release(self):
        self.assert_exact("use_after_release.py")

    def test_blocking_async(self):
        self.assert_exact("blocking_async.py")

    def test_fork_after_thread(self):
        self.assert_exact("fork_after_thread.py")


# ----------------------------------------------------------------------
# Engine idioms must stay clean (the patterns the analyzer was tuned on)
# ----------------------------------------------------------------------


class TestEngineIdioms:
    def test_move_pattern_is_clean(self):
        source = """
            def step(bdd, reached, image):
                previous = reached
                reached = bdd.incref(bdd.or_(reached, image))
                bdd.decref(previous)
                bdd.decref(reached)
        """
        assert deep_rules_in(source) == []

    def test_fixpoint_loop_is_clean(self):
        source = """
            def run(bdd, relation, space, monitor, init_chi):
                reached = bdd.incref(init_chi)
                frontier = bdd.incref(init_chi)
                iterations = 0
                while True:
                    iterations += 1
                    image = relation.image(frontier)
                    new = bdd.diff(image, reached)
                    if new == bdd.false:
                        break
                    previous = reached
                    reached = bdd.incref(bdd.or_(reached, image))
                    bdd.decref(previous)
                    bdd.decref(frontier)
                    frontier = bdd.incref(new)
                    monitor.save_state(
                        iterations,
                        functions={"reached": reached, "frontier": frontier},
                    )
                bdd.decref(frontier)
                bdd.decref(reached)
        """
        assert deep_rules_in(source) == []

    def test_result_escape_is_clean(self):
        source = """
            def run(bdd, a, b, result):
                reached = bdd.incref(bdd.or_(a, b))
                result.extra["chi"] = reached
        """
        assert deep_rules_in(source) == []

    def test_closure_capture_escapes(self):
        source = """
            def run(bdd, a, b, hooks):
                reached = bdd.incref(bdd.or_(a, b))

                def snapshot():
                    return reached

                hooks.append(snapshot)
        """
        assert deep_rules_in(source) == []

    def test_interprocedural_gc_crossing_flags(self):
        source = """
            class Monitor:
                def __init__(self, bdd):
                    self.bdd = bdd

                def tick(self, roots):
                    self.bdd.maybe_collect(roots)


            def run(bdd, monitor, a, b):
                tmp = bdd.and_(a, b)
                monitor.tick(())
                return bdd.dag_size(tmp)
        """
        assert deep_rules_in(source) == [("R104", 13)]

    def test_bare_incref_of_parameter_is_untracked(self):
        source = """
            class Function:
                def __init__(self, bdd, node):
                    self.bdd = bdd
                    self.node = node
                    bdd.incref(node)
        """
        assert deep_rules_in(source) == []

    def test_restore_rebind_without_decref_flags(self):
        source = """
            def run(bdd, monitor, init_chi):
                reached = bdd.incref(init_chi)
                snapshot = monitor.restore()
                if snapshot is not None:
                    reached = snapshot.functions["reached"]
                bdd.decref(reached)
        """
        assert deep_rules_in(source) == [("R101", 6)]


# ----------------------------------------------------------------------
# Concurrency rules
# ----------------------------------------------------------------------


class TestLockDiscipline:
    GUARDED = """
        import threading


        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def put(self, key, value):
                with self._lock:
                    self._items[key] = value

            def race(self, key, value):
                self._items[key] = value
    """

    def test_unlocked_mutation_flags(self):
        assert deep_rules_in(self.GUARDED) == [("R202", 15)]

    def test_locked_helper_methods_are_clean(self):
        source = """
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._store(key, value)

                def _store(self, key, value):
                    self._items[key] = value
        """
        assert deep_rules_in(source) == []

    def test_init_writes_are_exempt(self):
        source = """
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value
        """
        assert deep_rules_in(source) == []


class TestMonotonicScope:
    WALL = "import time\n\n\ndef stamp():\n    return time.time()\n"

    def test_obs_and_serve_in_scope(self):
        assert [
            f.rule
            for f in deep_lint_sources([("src/repro/obs/tail.py", self.WALL)])
        ] == ["R204"]
        assert [
            f.rule
            for f in deep_lint_sources(
                [("src/repro/serve/admission.py", self.WALL)]
            )
        ] == ["R204"]

    def test_reach_out_of_scope(self):
        assert (
            deep_lint_sources([("src/repro/reach/common.py", self.WALL)])
            == []
        )


# ----------------------------------------------------------------------
# noqa + baseline machinery
# ----------------------------------------------------------------------


class TestSuppression:
    LEAKY = """
        def leak(bdd, a, b):
            tmp = bdd.incref(bdd.and_(a, b))  # noqa: R101
            size = bdd.dag_size(tmp)
            return size
    """

    def test_noqa_disarms_deep_rule(self):
        assert deep_rules_in(self.LEAKY) == []

    def test_noqa_must_name_the_right_rule(self):
        source = textwrap.dedent(self.LEAKY).replace("R101", "R102")
        assert [
            f.rule
            for f in deep_lint_sources(
                [("src/repro/reach/snippet.py", source)]
            )
        ] == ["R101"]


class TestBaseline:
    def findings(self):
        return [
            Finding("src/repro/reach/x.py", 10, "R101", "leak"),
            Finding("src/repro/serve/y.py", 20, "R202", "race"),
        ]

    def test_roundtrip_suppresses_everything(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(self.findings(), path)
        entries = load_baseline(path)
        kept, stale = apply_baseline(self.findings(), entries)
        assert kept == []
        assert stale == []

    def test_stale_entries_are_reported(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(self.findings(), path)
        entries = load_baseline(path)
        kept, stale = apply_baseline(self.findings()[:1], entries)
        assert kept == []
        assert [e["rule"] for e in stale] == ["R202"]

    def test_unmatched_findings_survive(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(self.findings()[:1], path)
        entries = load_baseline(path)
        kept, stale = apply_baseline(self.findings(), entries)
        assert [f.rule for f in kept] == ["R202"]

    def test_write_strips_root_prefix(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(
            [Finding("/repo/src/repro/a.py", 3, "R101", "m")],
            path,
            root="/repo",
        )
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["suppressions"][0]["path"] == "src/repro/a.py"


# ----------------------------------------------------------------------
# Catalog + repo sweep
# ----------------------------------------------------------------------


class TestCatalog:
    def test_deep_rule_catalog(self):
        assert sorted(DEEP_RULES) == [
            "R101",
            "R102",
            "R103",
            "R104",
            "R201",
            "R202",
            "R203",
            "R204",
        ]

    def test_deep_rules_disjoint_from_shallow(self):
        assert not set(DEEP_RULES) & set(RULES)


class TestRepoSweep:
    def test_repo_deep_lint_clean_modulo_baseline(self):
        findings = run_deep_lint(())
        baseline_path = os.path.join(REPO_ROOT, "lint-baseline.json")
        entries = load_baseline(baseline_path)
        kept, _stale = apply_baseline(findings, entries)
        assert [f.render() for f in kept] == []

"""Custom lint rules: each fires in scope, stays quiet out of scope.

``lint_source`` takes the would-be path alongside the source, so every
rule's scoping is testable without touching the working tree.
"""

import textwrap

import pytest

from repro.analysis.lint import (
    RULES,
    Finding,
    lint_source,
    main,
    run_lint,
)

KERNEL_PATH = "src/repro/bdd/operations.py"
SCHEDULER_PATH = "src/repro/harness/scheduler.py"
HARNESS_PATH = "src/repro/harness/runner.py"
NEUTRAL_PATH = "src/repro/reach/common.py"


def rules_in(source, path):
    return [f.rule for f in lint_source(textwrap.dedent(source), path)]


# ----------------------------------------------------------------------
# R001 — recursive apply-style kernels
# ----------------------------------------------------------------------


class TestR001:
    RECURSIVE = """
        def apply_and(m, f, g):
            if f < 2:
                return g
            return apply_and(m, m._lo[f], g)
    """

    def test_flags_self_recursion_in_kernel_module(self):
        assert rules_in(self.RECURSIVE, KERNEL_PATH) == ["R001"]

    def test_quiet_outside_kernel_modules(self):
        assert rules_in(self.RECURSIVE, NEUTRAL_PATH) == []
        assert rules_in(self.RECURSIVE, "src/repro/bdd/__init__.py") == []

    def test_flags_self_method_recursion(self):
        source = """
            class Walker:
                def walk(self, node):
                    return self.walk(node - 1)
        """
        assert rules_in(source, KERNEL_PATH) == ["R001"]

    def test_iterative_kernel_is_clean(self):
        source = """
            def apply_and(m, f, g):
                stack = [(f, g)]
                while stack:
                    stack.pop()
                return 0
        """
        assert rules_in(source, KERNEL_PATH) == []

    def test_calling_a_different_function_is_clean(self):
        source = """
            def helper(x):
                return x

            def apply_and(m, f):
                return helper(f)
        """
        assert rules_in(source, KERNEL_PATH) == []


# ----------------------------------------------------------------------
# R002 — nondeterminism in byte-identical output paths
# ----------------------------------------------------------------------


class TestR002:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\n",
            "from random import shuffle\n",
            "import time\n\ndef stamp():\n    return time.time()\n",
            "import os\n\ndef newest(d):\n    return os.listdir(d)\n",
            "import glob\n\ndef grab(d):\n    return glob.glob(d)\n",
            "import os\n\ndef age(p):\n    return os.path.getmtime(p)\n",
            "def walk(s):\n    for x in {1, 2, 3}:\n        print(x)\n",
            "def walk(s):\n    return [x for x in set(s)]\n",
        ],
        ids=[
            "import-random",
            "from-random",
            "wall-clock",
            "listdir",
            "glob",
            "mtime",
            "for-over-set",
            "comprehension-over-set",
        ],
    )
    def test_flags_each_source_kind(self, source):
        assert rules_in(source, SCHEDULER_PATH) == ["R002"]

    def test_sorted_listing_is_clean(self):
        source = "import os\n\ndef newest(d):\n    return sorted(os.listdir(d))\n"
        assert rules_in(source, SCHEDULER_PATH) == []

    def test_monotonic_clock_is_clean(self):
        source = "import time\n\ndef tick():\n    return time.monotonic()\n"
        assert rules_in(source, SCHEDULER_PATH) == []

    def test_quiet_outside_deterministic_paths(self):
        assert rules_in("import random\n", NEUTRAL_PATH) == []

    def test_all_deterministic_modules_in_scope(self):
        for suffix in (
            "repro/harness/journal.py",
            "repro/harness/checkpoint.py",
            "repro/harness/faults.py",
            "repro/obs/report.py",
        ):
            assert rules_in("import random\n", "src/" + suffix) == ["R002"]


# ----------------------------------------------------------------------
# R003 — node handles held across collect_garbage
# ----------------------------------------------------------------------


class TestR003:
    def test_flags_handle_used_after_unprotecting_gc(self):
        source = """
            def step(bdd, a, b):
                frontier = bdd.and_(a, b)
                bdd.collect_garbage([a])
                return bdd.not_(frontier)
        """
        assert rules_in(source, NEUTRAL_PATH) == ["R003"]

    def test_rooted_handle_is_clean(self):
        source = """
            def step(bdd, a, b):
                frontier = bdd.and_(a, b)
                bdd.collect_garbage([a, frontier])
                return bdd.not_(frontier)
        """
        assert rules_in(source, NEUTRAL_PATH) == []

    def test_increfed_handle_is_clean(self):
        source = """
            def step(bdd, a, b):
                frontier = bdd.and_(a, b)
                bdd.incref(frontier)
                bdd.collect_garbage([a])
                return bdd.not_(frontier)
        """
        assert rules_in(source, NEUTRAL_PATH) == []

    def test_rebound_handle_is_clean(self):
        source = """
            def step(bdd, a, b):
                frontier = bdd.and_(a, b)
                bdd.collect_garbage([a])
                frontier = bdd.and_(a, a)
                return bdd.not_(frontier)
        """
        assert rules_in(source, NEUTRAL_PATH) == []

    def test_quiet_without_gc_call(self):
        source = """
            def step(bdd, a, b):
                frontier = bdd.and_(a, b)
                return bdd.not_(frontier)
        """
        assert rules_in(source, NEUTRAL_PATH) == []


# ----------------------------------------------------------------------
# R004 — bare except in the harness
# ----------------------------------------------------------------------


class TestR004:
    BARE = """
        def attempt():
            try:
                return 1
            except:
                return None
    """

    def test_flags_bare_except_in_harness(self):
        assert rules_in(self.BARE, HARNESS_PATH) == ["R004"]

    def test_typed_except_is_clean(self):
        source = """
            def attempt():
                try:
                    return 1
                except Exception:
                    return None
        """
        assert rules_in(source, HARNESS_PATH) == []

    def test_quiet_outside_harness(self):
        assert rules_in(self.BARE, NEUTRAL_PATH) == []


# ----------------------------------------------------------------------
# Suppression, rendering, driver
# ----------------------------------------------------------------------


class TestSuppression:
    def test_bare_noqa_disarms_all(self):
        source = "import random  # noqa\n"
        assert rules_in(source, SCHEDULER_PATH) == []

    def test_targeted_noqa_disarms_named_rule(self):
        source = "import random  # noqa: R002\n"
        assert rules_in(source, SCHEDULER_PATH) == []

    def test_wrong_code_does_not_disarm(self):
        source = "import random  # noqa: R004\n"
        assert rules_in(source, SCHEDULER_PATH) == ["R002"]

    def test_noqa_is_line_scoped(self):
        source = "import random  # noqa: R002\nimport random\n"
        findings = lint_source(source, SCHEDULER_PATH)
        assert [(f.rule, f.line) for f in findings] == [("R002", 2)]


class TestDriver:
    def test_syntax_error_is_r000(self):
        findings = lint_source("def broken(:\n", NEUTRAL_PATH)
        assert [f.rule for f in findings] == ["R000"]

    def test_finding_render_format(self):
        finding = Finding("a.py", 7, "R002", "msg")
        assert finding.render() == "a.py:7: R002 msg"

    def test_rule_catalog_is_complete(self):
        assert sorted(RULES) == ["R001", "R002", "R003", "R004"]

    def test_repo_is_lint_clean(self):
        assert run_lint(()) == []

    def test_main_lists_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_main_reports_findings_with_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "harness" / "oops.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main([str(bad)]) == 1
        assert "R004" in capsys.readouterr().out

    def test_main_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "fine.py"
        good.write_text("VALUE = 1\n")
        assert main([str(good)]) == 0
        assert capsys.readouterr().out == ""


# ----------------------------------------------------------------------
# R002 scope extension: backends/ + serve/cache.py
# ----------------------------------------------------------------------


class TestR002ScopeExtension:
    def test_backends_dir_in_scope(self):
        assert rules_in(
            "import random\n", "src/repro/backends/bitset.py"
        ) == ["R002"]
        assert rules_in(
            "import random\n", "src/repro/backends/zonotope.py"
        ) == ["R002"]

    def test_serve_cache_in_scope(self):
        assert rules_in(
            "import random\n", "src/repro/serve/cache.py"
        ) == ["R002"]

    def test_other_serve_modules_stay_out_of_scope(self):
        assert rules_in("import random\n", "src/repro/serve/server.py") == []


# ----------------------------------------------------------------------
# Decorator findings attach to the suppressible def line
# ----------------------------------------------------------------------


class TestDecoratorNoqa:
    DECORATED = """
        import time


        @retry(deadline=time.time() + 5)
        def act():  # noqa: R002
            return 1
    """

    def test_finding_attributed_to_def_line(self):
        source = textwrap.dedent(self.DECORATED).replace(
            "  # noqa: R002", ""
        )
        findings = lint_source(source, SCHEDULER_PATH)
        assert [(f.rule, f.line) for f in findings] == [("R002", 6)]

    def test_noqa_on_def_line_disarms_decorator_finding(self):
        assert rules_in(self.DECORATED, SCHEDULER_PATH) == []

    def test_noqa_on_undecorated_line_still_line_scoped(self):
        source = """
            import time


            def act():  # noqa: R002
                return time.time()
        """
        # The finding is on the body line, not the def line: stays armed.
        assert rules_in(source, SCHEDULER_PATH) == ["R002"]

"""A disabled sanitizer must be (near) free: <5% of a small run.

Same methodology as the null-tracer overhead gate
(``tests/obs/test_overhead.py``): wall-clock comparison of two engine
runs is too noisy for CI, so we measure the actual per-iteration cost
of the ``monitor.audit(...)`` early-out the instrumented engines pay
when no ``--sanitize`` rate is configured, and require that cost times
the run's iteration count to stay under 5% of the run's wall time.
"""

import time

from repro.bdd import BDD
from repro.circuits import generators as gen
from repro.reach import bfv_reachability
from repro.reach.common import RunMonitor


def disabled_audit_cost_per_iteration(cycles=20000):
    """Median-of-3 cost of one disabled ``monitor.audit`` call."""
    monitor = RunMonitor(BDD(), None)
    assert monitor.sanitizer is None
    timings = []
    for _ in range(3):
        start = time.perf_counter()
        for i in range(cycles):
            monitor.audit(i, vectors=(None, None))
        timings.append(time.perf_counter() - start)
    timings.sort()
    return timings[1] / cycles


class TestDisabledSanitizerOverhead:
    def test_disabled_overhead_under_five_percent(self):
        # A small but non-trivial run: 32 states, 32 image steps.
        result = bfv_reachability(gen.counter(5))
        assert result.completed
        assert result.seconds > 0
        per_iteration = disabled_audit_cost_per_iteration()
        added = per_iteration * result.iterations
        assert added < 0.05 * result.seconds, (
            "disabled sanitizer cost %.3fus/iter x %d iterations = %.6fs "
            "exceeds 5%% of the %.6fs run"
            % (
                per_iteration * 1e6,
                result.iterations,
                added,
                result.seconds,
            )
        )

    def test_disabled_audit_reports_false(self):
        monitor = RunMonitor(BDD(), None)
        assert monitor.audit(0) is False

"""Runtime sanitizer: every corruption class is caught *by name*.

Each audit family gets three kinds of coverage: clean state passes, a
seeded corruption raises :class:`SanitizerError` naming the violated
invariant, and the engine-integration path (``sanitize=1.0``) catches
the same corruption when the fault injector plants it mid-run.
"""

import json

import pytest

from repro.analysis import (
    Sanitizer,
    check_bdd_structure,
    check_bfv_canonical,
    check_cache_soundness,
    check_decomposition,
    check_refcounts,
    validate_checkpoint_meta,
    validate_journal_record,
)
from repro.bdd import BDD
from repro.bfv import BFV, ConjunctiveDecomposition
from repro.circuits import generators as gen
from repro.errors import SanitizerError
from repro.harness import AttemptSpec, faults, run_attempt
from repro.harness.checkpoint import Checkpointer
from repro.harness.journal import RunJournal, merge_journals
from repro.harness.worker import sanitize_rate_for
from repro.reach import ENGINES
from repro.reach.common import RunMonitor


def busy_manager():
    """A manager with enough structure to make every audit non-trivial."""
    bdd = BDD(["v%d" % i for i in range(6)])
    f = bdd.and_(bdd.var(0), bdd.or_(bdd.var(1), bdd.not_(bdd.var(2))))
    g = bdd.xor(bdd.var(3), bdd.and_(bdd.var(4), bdd.var(5)))
    h = bdd.ite(f, g, bdd.not_(g))
    bdd.exists([1, 3], h)
    bdd.cofactor(h, 0, True)
    return bdd, (f, g, h)


# ----------------------------------------------------------------------
# BDD structure + refcount audits
# ----------------------------------------------------------------------


class TestBddStructure:
    def test_clean_manager_passes(self):
        bdd, roots = busy_manager()
        assert check_bdd_structure(bdd) > 2
        assert check_refcounts(bdd, roots) > 0

    def test_duplicate_triple_named(self):
        bdd, _ = busy_manager()
        assert faults.corrupt_unique_table(bdd) is not None
        with pytest.raises(SanitizerError) as info:
            check_bdd_structure(bdd)
        assert info.value.invariant == "bdd.unique_duplicate_triple"

    def test_node_count_desync_named(self):
        bdd, _ = busy_manager()
        bdd._node_count += 1
        with pytest.raises(SanitizerError) as info:
            check_bdd_structure(bdd)
        assert info.value.invariant == "bdd.node_count_sync"

    def test_dangling_extref_named(self):
        bdd, _ = busy_manager()
        bdd._extref[len(bdd._var) + 7] = 1
        with pytest.raises(SanitizerError) as info:
            check_refcounts(bdd)
        assert info.value.invariant == "bdd.extref_dangling"

    def test_nonpositive_extref_named(self):
        bdd, roots = busy_manager()
        bdd._extref[roots[0]] = 0
        with pytest.raises(SanitizerError) as info:
            check_refcounts(bdd, roots)
        assert info.value.invariant == "bdd.extref_dangling"

    def test_survives_garbage_collection(self):
        bdd, (f, g, h) = busy_manager()
        bdd.collect_garbage([h])
        assert check_bdd_structure(bdd) > 0
        assert check_refcounts(bdd, (h,)) > 0


class TestCacheSoundness:
    def test_clean_cache_replays(self):
        bdd, _ = busy_manager()
        replayed, _skipped = check_cache_soundness(bdd, sample=8)
        assert replayed > 0

    def test_planted_wrong_result_named(self):
        bdd, _ = busy_manager()
        assert faults.corrupt_computed_table(bdd) is not None
        with pytest.raises(SanitizerError) as info:
            check_cache_soundness(bdd, sample=8)
        assert info.value.invariant == "bdd.cache_replay"


# ----------------------------------------------------------------------
# BFV canonicity audits
# ----------------------------------------------------------------------


class TestBfvCanonical:
    def choice_setup(self):
        bdd = BDD(["c%d" % i for i in range(3)])
        cvars = (0, 1, 2)
        vec = BFV.from_points(
            bdd, cvars, [(True, False, True), (False, True, True)]
        )
        return bdd, cvars, vec

    def test_clean_vector_passes(self):
        _, _, vec = self.choice_setup()
        check_bfv_canonical(vec)

    def test_empty_and_universe_pass(self):
        bdd, cvars, _ = self.choice_setup()
        check_bfv_canonical(BFV.empty(bdd, cvars))
        check_bfv_canonical(BFV.universe(bdd, cvars))

    def test_noncanonical_component_named(self):
        bdd, cvars, vec = self.choice_setup()
        # Component 0 may not depend on any choice variable; this is the
        # exact corruption the ``corrupt_bfv`` fault kind plants.
        vec.components = (bdd.not_(bdd.var(cvars[0])),) + tuple(
            vec.components[1:]
        )
        with pytest.raises(SanitizerError) as info:
            check_bfv_canonical(vec)
        assert info.value.invariant == "bfv.structure"

    def test_clean_decomposition_passes(self):
        _, _, vec = self.choice_setup()
        check_decomposition(ConjunctiveDecomposition.from_bfv(vec))


# ----------------------------------------------------------------------
# Persisted-state schema audits
# ----------------------------------------------------------------------


def good_meta():
    return {
        "engine": "bfv",
        "circuit": "traffic",
        "order": "S1",
        "iteration": 3,
        "functions": ["frontier"],
        "vectors": ["reached"],
        "counters": {"ops": 12},
    }


class TestCheckpointSchema:
    def test_good_meta_passes(self):
        validate_checkpoint_meta(good_meta())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda m: m.pop("engine"),
            lambda m: m.__setitem__("circuit", 7),
            lambda m: m.__setitem__("iteration", -1),
            lambda m: m.__setitem__("iteration", True),
            lambda m: m.__setitem__("functions", "frontier"),
            lambda m: m.__setitem__("counters", [1, 2]),
        ],
        ids=[
            "missing-engine",
            "nonstring-circuit",
            "negative-iteration",
            "bool-iteration",
            "nonlist-functions",
            "nondict-counters",
        ],
    )
    def test_bad_meta_named(self, mutate):
        meta = good_meta()
        mutate(meta)
        with pytest.raises(SanitizerError) as info:
            validate_checkpoint_meta(meta, path="x.rbdd")
        assert info.value.invariant == "checkpoint.schema"


class TestJournalSchema:
    def test_good_records_pass(self):
        validate_journal_record({"event": "note", "wall": 1.5})
        validate_journal_record(
            {"event": "attempt", "engine": "bfv", "circuit": "traffic"}
        )

    @pytest.mark.parametrize(
        "record",
        [
            {"wall": 1.0},
            {"event": "", "wall": 1.0},
            {"event": "note", "wall": "yesterday"},
            {"event": "attempt", "circuit": "traffic"},
            {"event": "fallback_attempt", "engine": "bfv"},
        ],
        ids=[
            "missing-event",
            "empty-event",
            "string-wall",
            "attempt-missing-engine",
            "fallback-missing-circuit",
        ],
    )
    def test_bad_records_named(self, record):
        with pytest.raises(SanitizerError) as info:
            validate_journal_record(record, line=4)
        assert info.value.invariant == "journal.schema"

    def test_journal_validator_hook(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        RunJournal(path).append({"event": "note"})
        with open(path, "a") as handle:
            handle.write(json.dumps({"event": ""}) + "\n")
        with pytest.raises(SanitizerError) as info:
            list(RunJournal(path, validator=validate_journal_record))
        assert info.value.invariant == "journal.schema"

    def test_merge_journals_validates(self, tmp_path):
        source = str(tmp_path / "worker.jsonl")
        RunJournal(source).append({"event": "note"})
        with open(source, "a") as handle:
            handle.write(json.dumps({"wall": 0.5}) + "\n")
        with pytest.raises(SanitizerError):
            merge_journals(
                [source],
                str(tmp_path / "merged.jsonl"),
                validator=validate_journal_record,
            )


# ----------------------------------------------------------------------
# Sanitizer object semantics
# ----------------------------------------------------------------------


class TestSanitizerObject:
    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_bad_rate_named(self, rate):
        with pytest.raises(SanitizerError) as info:
            Sanitizer(BDD(), rate=rate)
        assert info.value.invariant == "sanitizer.rate"

    def test_stride_is_deterministic(self):
        sanitizer = Sanitizer(BDD(), rate=0.25)
        assert sanitizer.stride == 4
        pattern = [sanitizer.should_audit(i) for i in range(8)]
        assert pattern == [True, False, False, False] * 2

    def test_full_rate_audits_every_iteration(self):
        sanitizer = Sanitizer(BDD(), rate=1.0)
        assert sanitizer.stride == 1
        assert all(sanitizer.should_audit(i) for i in range(5))

    def test_audit_counts_and_snapshot(self):
        bdd, roots = busy_manager()
        sanitizer = Sanitizer(bdd, rate=1.0)
        assert sanitizer.audit(0, roots=roots)
        snap = sanitizer.snapshot()
        assert snap["audits"] == 1
        assert snap["nodes_scanned"] > 0
        assert snap["cache_replayed"] > 0
        assert snap["rate"] == 1.0
        assert snap["stride"] == 1

    def test_audit_restores_node_limit(self):
        bdd, roots = busy_manager()
        bdd.node_limit = 50_000
        Sanitizer(bdd, rate=1.0).audit(0, roots=roots)
        assert bdd.node_limit == 50_000

    def test_audit_skips_none_vectors(self):
        bdd, _ = busy_manager()
        sanitizer = Sanitizer(bdd, rate=1.0)
        assert sanitizer.audit(0, vectors=(None,), decompositions=(None,))
        assert sanitizer.counts["vectors_audited"] == 0


# ----------------------------------------------------------------------
# Engine integration: seeded corruption under --sanitize=1.0
# ----------------------------------------------------------------------

#: Fault kind -> the invariant the sanitizer must name when it fires.
CORRUPTIONS = [
    ("corrupt_unique", "bdd.unique_duplicate_triple"),
    ("corrupt_cache", "bdd.cache_replay"),
    ("corrupt_bfv", "bfv.structure"),
]


class TestEngineIntegration:
    @pytest.mark.parametrize(
        "kind,invariant", CORRUPTIONS, ids=[c[0] for c in CORRUPTIONS]
    )
    def test_seeded_corruption_caught_by_name(self, kind, invariant):
        plan = faults.install([{"kind": kind, "at_iteration": 2}])
        try:
            with pytest.raises(SanitizerError) as info:
                ENGINES["bfv"](gen.traffic_light(), sanitize=1.0)
        finally:
            plan.uninstall()
        assert info.value.invariant == invariant

    @pytest.mark.parametrize("engine", ["bfv", "tr", "conj", "cbm"])
    def test_clean_sanitized_run_reports_counts(self, engine):
        result = ENGINES[engine](gen.traffic_light(), sanitize=1.0)
        assert result.completed
        counts = result.extra["sanitizer"]
        # The fixpoint-detecting final iteration exits before its audit.
        assert counts["audits"] >= result.iterations - 1 > 0
        assert counts["rate"] == 1.0

    def test_half_rate_audits_fewer_iterations(self):
        full = ENGINES["bfv"](gen.counter(4), sanitize=1.0)
        half = ENGINES["bfv"](gen.counter(4), sanitize=0.5)
        assert half.extra["sanitizer"]["stride"] == 2
        assert 0 < half.extra["sanitizer"]["audits"] < (
            full.extra["sanitizer"]["audits"]
        )

    def test_unsanitized_run_has_no_counts(self):
        result = ENGINES["bfv"](gen.traffic_light())
        assert "sanitizer" not in result.extra


# ----------------------------------------------------------------------
# Harness boundary: spec field and REPRO_SANITIZE env var
# ----------------------------------------------------------------------


class TestHarnessBoundary:
    def test_spec_rate_wins_over_env(self):
        spec = AttemptSpec(circuit="traffic", sanitize=0.5)
        assert sanitize_rate_for(spec, {"REPRO_SANITIZE": "1.0"}) == 0.5

    def test_env_fallback(self):
        spec = AttemptSpec(circuit="traffic")
        assert sanitize_rate_for(spec, {"REPRO_SANITIZE": "0.25"}) == 0.25
        assert sanitize_rate_for(spec, {}) is None
        assert sanitize_rate_for(spec, {"REPRO_SANITIZE": ""}) is None

    def test_unparsable_env_rejected(self):
        spec = AttemptSpec(circuit="traffic")
        with pytest.raises(ValueError):
            sanitize_rate_for(spec, {"REPRO_SANITIZE": "yes please"})

    def test_spec_carries_rate_through_run_attempt(self):
        result = run_attempt(AttemptSpec(circuit="traffic", sanitize=1.0))
        assert result.completed
        assert result.extra["sanitizer"]["audits"] > 0

    def test_env_crosses_worker_boundary(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1.0")
        result = run_attempt(AttemptSpec(circuit="traffic"))
        assert result.completed
        assert result.extra["sanitizer"]["audits"] > 0

    def test_spec_roundtrips_sanitize_field(self):
        spec = AttemptSpec(circuit="traffic", sanitize=0.5)
        assert AttemptSpec.from_dict(spec.to_dict()).sanitize == 0.5


# ----------------------------------------------------------------------
# Checkpoint-resume validation through RunMonitor
# ----------------------------------------------------------------------


class TestResumeValidation:
    def write_checkpoint(self, directory):
        bdd = BDD(["a", "b"])
        node = bdd.and_(bdd.var(0), bdd.var(1))
        saver = Checkpointer(directory, engine="bfv", circuit="traffic")
        return saver.save(bdd, 3, functions={"frontier": node})

    def test_tampered_meta_rejected_on_resume(self, tmp_path):
        path = self.write_checkpoint(str(tmp_path))
        with open(path) as handle:
            text = handle.read()
        assert '"iteration": 3' in text
        with open(path, "w") as handle:
            handle.write(text.replace('"iteration": 3', '"iteration": -3'))
        loader = Checkpointer(
            str(tmp_path), engine="bfv", circuit="traffic", resume=True
        )
        monitor = RunMonitor(BDD(["a", "b"]), None, loader, sanitize=1.0)
        with pytest.raises(SanitizerError) as info:
            monitor.restore()
        assert info.value.invariant == "checkpoint.schema"

    def test_intact_checkpoint_resumes(self, tmp_path):
        self.write_checkpoint(str(tmp_path))
        loader = Checkpointer(
            str(tmp_path), engine="bfv", circuit="traffic", resume=True
        )
        monitor = RunMonitor(BDD(["a", "b"]), None, loader, sanitize=1.0)
        snapshot = monitor.restore()
        assert snapshot is not None and snapshot.iteration == 3

"""Unit tests for the explicit bitset backend (the campaign's oracle).

The backend's gate evaluation is deliberately a third independent
implementation (bit-parallel truth tables — neither the BDD substrate
nor :class:`repro.sim.ConcreteSimulator`), so these tests cross it
against both: forward closure vs :func:`repro.sim.explicit_reachable`,
single steps vs the concrete simulator, plus the structural feasibility
caps and the checkpoint payload round-trip.
"""

import itertools

import pytest

from repro.backends import BitsetBackend
from repro.circuits.catalog import resolve
from repro.circuits.netlist import Circuit
from repro.errors import ResourceLimitError
from repro.reach import ENGINES
from repro.sim import ConcreteSimulator, explicit_reachable

from tests.test_fuzz import random_circuit


@pytest.mark.parametrize("seed", range(12))
def test_closure_matches_explicit_search(seed):
    """Backend-op fix point equals the explicit-state searcher's set."""
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    backend = BitsetBackend(circuit)
    reached = backend.initial()
    while True:
        bigger = backend.union(reached, backend.image(reached))
        if backend.equal(bigger, reached):
            break
        reached = bigger
    assert set(backend.enumerate_states(reached)) == set(
        explicit_reachable(circuit)
    )


@pytest.mark.parametrize("seed", range(8))
def test_image_matches_concrete_simulator(seed):
    """One image step agrees with stepping every input valuation."""
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    backend = BitsetBackend(circuit)
    simulator = ConcreteSimulator(circuit)
    nets = circuit.state_nets
    for state in itertools.product(
        (False, True), repeat=circuit.num_latches
    ):
        expected = set()
        for valuation in itertools.product(
            (False, True), repeat=len(circuit.inputs)
        ):
            inputs = dict(zip(circuit.inputs, valuation))
            expected.add(simulator.step(tuple(state), inputs))
        handle = backend.from_points([state])
        assert set(backend.enumerate_states(backend.image(handle))) == (
            expected
        ), (seed, state)


@pytest.mark.parametrize("seed", range(8))
def test_pre_image_is_adjoint(seed):
    """``s in pre(T)`` iff ``image({s})`` meets ``T``, for every state."""
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    backend = BitsetBackend(circuit)
    target = backend.initial()
    pre = backend.pre_image(target)
    for state in itertools.product(
        (False, True), repeat=circuit.num_latches
    ):
        successors = backend.image(backend.from_points([state]))
        meets = successors.mask & target.mask != 0
        assert backend.contains(pre, state) == meets, (seed, state)


def test_zero_input_circuit():
    """Deterministic (input-free) circuits work: one successor each."""
    circuit = resolve("lfsr8")
    backend = BitsetBackend(circuit)
    reached = backend.initial()
    while True:
        bigger = backend.union(reached, backend.image(reached))
        if backend.equal(bigger, reached):
            break
        reached = bigger
    assert set(backend.enumerate_states(reached)) == set(
        explicit_reachable(circuit)
    )


def _wide_circuit(latches, inputs=1):
    circuit = Circuit("wide%dx%d" % (latches, inputs))
    for i in range(inputs):
        circuit.add_input("x%d" % i)
    for i in range(latches):
        circuit.add_latch("q%d" % i, "g%d" % i, False)
        circuit.add_gate("g%d" % i, "BUF", ["q%d" % i])
    circuit.add_output("g0")
    return circuit


def test_latch_cap_is_memory_limited():
    with pytest.raises(ResourceLimitError) as info:
        BitsetBackend(_wide_circuit(23))
    assert info.value.kind == "memory"


def test_space_cap_is_memory_limited():
    with pytest.raises(ResourceLimitError) as info:
        BitsetBackend(_wide_circuit(12, inputs=13))
    assert info.value.kind == "memory"


def test_infeasible_circuit_reports_mo_cell():
    """Over-cap circuits degrade to an M.O. result, not a crash."""
    result = ENGINES["bitset"](resolve("s3271s"))
    assert not result.completed
    assert result.failure == "memory"
    assert result.status == "M.O."


def test_payload_round_trip():
    circuit = random_circuit(3, max_latches=4, max_inputs=2, max_gates=10)
    backend = BitsetBackend(circuit)
    handle = backend.union(
        backend.initial(), backend.image(backend.initial())
    )
    clone = backend.from_payload(backend.to_payload(handle))
    assert backend.equal(clone, handle)
    assert clone.exact == handle.exact


def test_enumeration_limit():
    circuit = resolve("traffic")
    backend = BitsetBackend(circuit)
    with pytest.raises(ResourceLimitError):
        backend.enumerate_states(backend.universe(), limit=3)

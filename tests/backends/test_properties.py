"""Property-based algebraic laws for the set backends.

Each law is checked over a seeded corpus of random circuits and random
point sets, scaled by ``REPRO_FUZZ_SEEDS`` like the differential
campaign: union commutativity / associativity / idempotence and the
construction laws run on **every** registered backend (they hold for
exact and over-approximating representations alike, because the
zonotope union is an affine-closure operator); image monotonicity and
the ``pre_image``/``image`` Galois connection run on the bitset
backend, whose exact complement makes them directly testable.
"""

import os
import random

import pytest

from repro.backends import BACKENDS
from repro.backends.bitset import BitsetBackend

from tests.test_fuzz import random_circuit

#: Seed count, scaled like the differential campaign (CI raises it).
PROPERTY_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", "40"))

BACKEND_NAMES = sorted(BACKENDS)


def sample_points(rng, width, count):
    """``count`` random (possibly repeating) state tuples."""
    return [
        tuple(rng.random() < 0.5 for _ in range(width))
        for _ in range(count)
    ]


def build(backend_name, seed):
    """A backend over a random circuit plus three random point sets."""
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    backend = BACKENDS[backend_name].from_circuit(circuit)
    rng = random.Random(seed ^ 0xBEEF)
    width = circuit.num_latches
    sets = [
        backend.from_points(sample_points(rng, width, rng.randint(1, 6)))
        for _ in range(3)
    ]
    return backend, sets


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(PROPERTY_SEEDS))
def test_union_laws(backend_name, seed):
    """Union is commutative, associative, idempotent, with identity."""
    backend, (a, b, c) = build(backend_name, seed)
    assert backend.equal(backend.union(a, b), backend.union(b, a))
    assert backend.equal(
        backend.union(backend.union(a, b), c),
        backend.union(a, backend.union(b, c)),
    )
    assert backend.equal(backend.union(a, a), a)
    assert backend.equal(backend.union(a, backend.empty()), a)
    # Union is an upper bound of both operands.
    assert backend.subset(a, backend.union(a, b))
    assert backend.subset(b, backend.union(a, b))


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(PROPERTY_SEEDS))
def test_construction_laws(backend_name, seed):
    """from_points contains its points; empty/universe bracket any set."""
    backend, (a, _, _) = build(backend_name, seed)
    rng = random.Random(seed ^ 0xCAFE)
    width = backend.num_latches
    points = sample_points(rng, width, rng.randint(1, 5))
    handle = backend.from_points(points)
    for point in points:
        assert backend.contains(handle, point)
    assert backend.subset(backend.empty(), a)
    assert backend.subset(a, backend.universe())
    assert backend.count(backend.empty()) == 0
    assert backend.count(backend.universe()) == 2 ** width
    # Enumeration agrees with count and membership.
    states = backend.enumerate_states(a, limit=2 ** width)
    assert len(states) == backend.count(a)
    for state in states:
        assert backend.contains(a, state)


@pytest.mark.parametrize("seed", range(PROPERTY_SEEDS))
def test_image_monotone(seed):
    """Bitset: ``a <= b`` implies ``image(a) <= image(b)`` (and pre)."""
    backend, (a, b, _) = build("bitset", seed)
    bigger = backend.union(a, b)
    assert backend.subset(backend.image(a), backend.image(bigger))
    assert backend.subset(backend.pre_image(a), backend.pre_image(bigger))


@pytest.mark.parametrize("seed", range(PROPERTY_SEEDS))
def test_galois_connection(seed):
    """Bitset: ``image(S) <= T``  iff  ``S <= ~pre_image(~T)``.

    The forward image and the *universal* pre-image (complement of the
    existential pre-image of the complement) form a Galois connection;
    checking the equivalence on random (S, T) pairs exercises image and
    pre_image against each other with no oracle beyond complement.
    """
    backend, (s, t, _) = build("bitset", seed)
    assert isinstance(backend, BitsetBackend)
    lhs = backend.subset(backend.image(s), t)
    universal_pre = backend.complement(
        backend.pre_image(backend.complement(t))
    )
    rhs = backend.subset(s, universal_pre)
    assert lhs == rhs


@pytest.mark.parametrize("seed", range(PROPERTY_SEEDS))
def test_image_union_distributes(seed):
    """Bitset: image distributes over union (exact representations)."""
    backend, (a, b, _) = build("bitset", seed)
    assert backend.equal(
        backend.image(backend.union(a, b)),
        backend.union(backend.image(a), backend.image(b)),
    )

"""Unit tests for the logical-zonotope backend.

Covers the GF(2) linear-algebra toolkit (canonical bases, affine
solving), the canonical-coset handle, the exactness flag's semantics
(exact on XOR-dominated structure, flagged over-approximation through
AND residues and non-coset unions), and soundness of image / pre_image
against the bitset oracle: the zonotope result must **never**
under-approximate.
"""

import random

import pytest

from repro.backends import BitsetBackend, LogicalZonotopeBackend
from repro.backends.zonotope import (
    Zonotope,
    in_span,
    reduce_by,
    rref,
    solve_affine,
)
from repro.circuits.netlist import Circuit

from tests.test_fuzz import random_circuit

# ----------------------------------------------------------------------
# GF(2) linear algebra
# ----------------------------------------------------------------------


def test_rref_is_canonical():
    # Two presentations of the same span reduce to one basis.
    a = rref([0b110, 0b011])
    b = rref([0b101, 0b011, 0b110])
    assert a == b
    assert len(a) == 2


def test_rref_drops_dependent_rows():
    assert rref([0b101, 0b101, 0b000]) == (0b101,)
    assert rref([]) == ()


def test_reduce_and_membership():
    basis = rref([0b110, 0b011])
    lookup = {row.bit_length() - 1: row for row in basis}
    assert reduce_by(0b101, lookup) == 0  # 101 = 110 ^ 011
    assert in_span(0b101, basis)
    assert not in_span(0b001, basis)


def test_solve_affine_unique():
    # x0 ^ x1 = 1, x1 = 1  =>  x = 10 (x1 set, x0 clear), no freedom.
    solution = solve_affine([(0b11, 1), (0b10, 1)], unknowns=2)
    assert solution is not None
    particular, null_basis = solution
    assert particular == 0b10
    assert null_basis == []


def test_solve_affine_underdetermined():
    # x0 ^ x1 = 0  =>  {00, 11}.
    particular, null_basis = solve_affine([(0b11, 0)], unknowns=2)
    assert particular == 0
    assert null_basis == [0b11]


def test_solve_affine_inconsistent():
    assert solve_affine([(0b01, 0), (0b01, 1)], unknowns=2) is None


# ----------------------------------------------------------------------
# Canonical coset handles
# ----------------------------------------------------------------------


def test_make_canonicalizes_presentation():
    a = Zonotope.make(3, 0b000, [0b110, 0b011], exact=True)
    b = Zonotope.make(3, 0b101, [0b101, 0b011], exact=True)
    assert a.same_set(b)
    assert a.rank == 2


def _two_latch_backend(data_ops):
    """A 2-latch, 1-input circuit with the given next-state nets."""
    circuit = Circuit("zono-unit")
    circuit.add_input("x0")
    circuit.add_latch("q0", "g0", False)
    circuit.add_latch("q1", "g1", False)
    for name, (op, fanin) in data_ops.items():
        circuit.add_gate(name, op, fanin)
    circuit.add_output("g0")
    return LogicalZonotopeBackend(circuit)


def test_from_points_coset_is_exact():
    backend = _two_latch_backend(
        {"g0": ("BUF", ["q0"]), "g1": ("BUF", ["q1"])}
    )
    handle = backend.from_points(
        [(False, False), (True, False), (False, True), (True, True)]
    )
    assert handle.exact
    assert backend.count(handle) == 4


def test_from_points_non_coset_flags_hull():
    backend = _two_latch_backend(
        {"g0": ("BUF", ["q0"]), "g1": ("BUF", ["q1"])}
    )
    handle = backend.from_points(
        [(False, False), (True, False), (False, True)]
    )
    assert not handle.exact  # 3 points are not a coset; hull has 4
    assert backend.count(handle) == 4
    for point in [(False, False), (True, False), (False, True)]:
        assert backend.contains(handle, point)


def test_union_of_overlapping_cosets_can_stay_exact():
    backend = _two_latch_backend(
        {"g0": ("BUF", ["q0"]), "g1": ("BUF", ["q1"])}
    )
    a = backend.from_points([(False, False), (True, False)])
    b = backend.from_points([(False, False), (False, True)])
    union = backend.union(a, b)
    # {00,10} | {00,01} has 3 states; the hull has 4 -> flagged.
    assert not union.exact
    assert backend.count(union) == 4
    line = backend.from_points([(False, False), (True, False)])
    assert backend.union(a, line).exact  # identical cosets stay exact


def test_xor_image_is_exact():
    backend = _two_latch_backend(
        {"g0": ("XOR", ["q0", "x0"]), "g1": ("XOR", ["q0", "q1"])}
    )
    start = backend.from_points([(False, False)])
    image = backend.image(start)
    assert image.exact
    assert set(backend.enumerate_states(image)) == {
        (False, False),
        (True, False),
    }


def test_and_image_flags_residue():
    backend = _two_latch_backend(
        {"g0": ("AND", ["q0", "x0"]), "g1": ("BUF", ["q1"])}
    )
    start = backend.universe()
    image = backend.image(start)
    assert not image.exact
    # Sound: every true successor is inside the over-approximation.
    bitset = BitsetBackend(backend.circuit)
    truth = set(bitset.enumerate_states(bitset.image(bitset.universe())))
    assert truth <= set(backend.enumerate_states(image))


def test_and_of_identical_operands_stays_exact():
    # x AND x == x is linear; no residue generator is spent on it.
    backend = _two_latch_backend(
        {"g0": ("AND", ["q0", "q0"]), "g1": ("BUF", ["q1"])}
    )
    image = backend.image(backend.universe())
    assert image.exact
    assert backend.count(image) == 4


# ----------------------------------------------------------------------
# Soundness vs the bitset oracle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(15))
def test_image_never_under_approximates(seed):
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    zono = LogicalZonotopeBackend(circuit)
    bitset = BitsetBackend(circuit)
    rng = random.Random(seed ^ 0x5EED)
    points = [
        tuple(rng.random() < 0.5 for _ in range(circuit.num_latches))
        for _ in range(rng.randint(1, 4))
    ]
    z = zono.image(zono.from_points(points))
    truth = bitset.image(bitset.from_points(points))
    zs = set(zono.enumerate_states(z))
    ts = set(bitset.enumerate_states(truth))
    assert ts <= zs, seed
    if z.exact:
        # Exactness of the *hull input* is part of the claim: an exact
        # image of an exact set is exactly the true image.
        assert zs == ts, seed


@pytest.mark.parametrize("seed", range(15))
def test_pre_image_never_under_approximates(seed):
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    zono = LogicalZonotopeBackend(circuit)
    bitset = BitsetBackend(circuit)
    rng = random.Random(seed ^ 0x7A12)
    points = [
        tuple(rng.random() < 0.5 for _ in range(circuit.num_latches))
        for _ in range(rng.randint(1, 4))
    ]
    target_z = zono.from_points(points)
    pre_z = zono.pre_image(target_z)
    # The zonotope target is a hull of the points, so its true
    # pre-image contains the pre-image of the points themselves.
    truth = bitset.pre_image(bitset.from_points(points))
    zs = set(zono.enumerate_states(pre_z))
    ts = set(bitset.enumerate_states(truth))
    assert ts <= zs, seed
    if pre_z.exact:
        # Exact flag => no relation residues and an exact target, so
        # the pre-image is exactly the bitset pre-image of the hull.
        hull_points = zono.enumerate_states(target_z)
        hull_truth = bitset.pre_image(bitset.from_points(hull_points))
        assert zs == set(bitset.enumerate_states(hull_truth)), seed


def test_pre_image_exact_on_linear_relation():
    backend = _two_latch_backend(
        {"g0": ("XOR", ["q0", "x0"]), "g1": ("XOR", ["q0", "q1"])}
    )
    bitset = BitsetBackend(backend.circuit)
    target = backend.from_points([(True, True)])
    pre = backend.pre_image(target)
    assert pre.exact
    truth = bitset.pre_image(bitset.from_points([(True, True)]))
    assert set(backend.enumerate_states(pre)) == set(
        bitset.enumerate_states(truth)
    )


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def test_payload_round_trip():
    circuit = random_circuit(5, max_latches=4, max_inputs=2, max_gates=10)
    backend = LogicalZonotopeBackend(circuit)
    handle = backend.union(
        backend.initial(), backend.image(backend.initial())
    )
    clone = backend.from_payload(backend.to_payload(handle))
    assert backend.equal(clone, handle)
    assert clone.exact == handle.exact

    empty = backend.from_payload(backend.to_payload(backend.empty()))
    assert backend.equal(empty, backend.empty())
    assert backend.count(empty) == 0

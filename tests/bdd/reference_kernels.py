"""The seed *recursive* BDD kernels, kept as a private reference oracle.

This module preserves the original recursive implementations of the
apply-style kernels (with their shared tuple-keyed computed table)
exactly as they shipped before the iterative rewrite.  They serve two
purposes:

* randomized equivalence testing — the iterative kernels must produce
  the *same node handles* as these on the same manager (canonicity makes
  node-id equality a complete correctness check);
* the "before" half of the tracked benchmarks
  (``benchmarks/bench_kernels.py`` / ``bench_reach.py``), so speedups
  are measured against the real prior implementation rather than a
  guess.

All functions take the manager first and use a dedicated per-manager
dict (``m._reference_cache``) so they never touch the production
per-operation tables.  :func:`install_reference_kernels` instance-binds
the full manager operation surface to these kernels, so whole reach
engines can run against the reference implementation.

This is test/benchmark infrastructure only — not part of the package.
"""

from __future__ import annotations

import types
from typing import Dict, Iterable, Sequence, Tuple

from repro.bdd.manager import BDD
from repro.errors import BDDError


def _cache(m) -> Dict[tuple, int]:
    cache = getattr(m, "_reference_cache", None)
    if cache is None:
        cache = {}
        m._reference_cache = cache
    return cache


# ----------------------------------------------------------------------
# operations.py (seed)
# ----------------------------------------------------------------------


def not_(m, f: int) -> int:
    if f < 2:
        return f ^ 1
    cache = _cache(m)
    key = ("!", f)
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = m._mk(m._var[f], not_(m, m._lo[f]), not_(m, m._hi[f]))
    cache[key] = result
    cache[("!", result)] = f
    return result


def and_(m, f: int, g: int) -> int:
    if f == g:
        return f
    if f > g:
        f, g = g, f
    if f == 0:
        return 0
    if f == 1:
        return g
    cache = _cache(m)
    key = ("&", f, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    if lf <= lg:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
    else:
        v = var_[g]
        f0 = f1 = f
    if lg <= lf:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    result = m._mk(v, and_(m, f0, g0), and_(m, f1, g1))
    cache[key] = result
    return result


def or_(m, f: int, g: int) -> int:
    if f == g:
        return f
    if f > g:
        f, g = g, f
    if f == 1:
        return 1
    if f == 0:
        return g
    cache = _cache(m)
    key = ("|", f, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    if lf <= lg:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
    else:
        v = var_[g]
        f0 = f1 = f
    if lg <= lf:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    result = m._mk(v, or_(m, f0, g0), or_(m, f1, g1))
    cache[key] = result
    return result


def xor(m, f: int, g: int) -> int:
    if f == g:
        return 0
    if f > g:
        f, g = g, f
    if f == 0:
        return g
    if f == 1:
        return not_(m, g)
    cache = _cache(m)
    key = ("^", f, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    if lf <= lg:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
    else:
        v = var_[g]
        f0 = f1 = f
    if lg <= lf:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    result = m._mk(v, xor(m, f0, g0), xor(m, f1, g1))
    cache[key] = result
    return result


def ite(m, f: int, g: int, h: int) -> int:
    if f == 1:
        return g
    if f == 0:
        return h
    if g == h:
        return g
    if g == 1 and h == 0:
        return f
    if g == 0 and h == 1:
        return not_(m, f)
    if g == 1:
        return or_(m, f, h)
    if h == 0:
        return and_(m, f, g)
    if g == 0:
        return and_(m, not_(m, f), h)
    if h == 1:
        return or_(m, not_(m, f), g)
    if f == g:
        return or_(m, f, h)
    if f == h:
        return and_(m, f, g)
    cache = _cache(m)
    key = ("?", f, g, h)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    level = min(lvl[var_[f]], lvl[var_[g]], lvl[var_[h]])
    v = m._level2var[level]
    if var_[f] == v:
        f0, f1 = lo_[f], hi_[f]
    else:
        f0 = f1 = f
    if g > 1 and var_[g] == v:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    if h > 1 and var_[h] == v:
        h0, h1 = lo_[h], hi_[h]
    else:
        h0 = h1 = h
    result = m._mk(v, ite(m, f0, g0, h0), ite(m, f1, g1, h1))
    cache[key] = result
    return result


# ----------------------------------------------------------------------
# quantify.py (seed)
# ----------------------------------------------------------------------


def _sorted_cube(m, variables: Sequence[int]) -> Tuple[int, ...]:
    lvl = m._var2level
    return tuple(sorted(set(variables), key=lvl.__getitem__))


def exists(m, f: int, variables: Sequence[int]) -> int:
    cube = _sorted_cube(m, variables)
    if not cube or f < 2:
        return f
    return _exists(m, f, cube)


def _exists(m, f: int, cube: Tuple[int, ...]) -> int:
    if f < 2:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    while cube and lvl[cube[0]] < lf:
        cube = cube[1:]
    if not cube:
        return f
    cache = _cache(m)
    key = ("E", f, cube)
    cached = cache.get(key)
    if cached is not None:
        return cached
    v = var_[f]
    if v == cube[0]:
        rest = cube[1:]
        r0 = _exists(m, lo_[f], rest)
        if r0 == 1:
            result = 1
        else:
            result = or_(m, r0, _exists(m, hi_[f], rest))
    else:
        result = m._mk(v, _exists(m, lo_[f], cube), _exists(m, hi_[f], cube))
    cache[key] = result
    return result


def forall(m, f: int, variables: Sequence[int]) -> int:
    cube = _sorted_cube(m, variables)
    if not cube or f < 2:
        return f
    return _forall(m, f, cube)


def _forall(m, f: int, cube: Tuple[int, ...]) -> int:
    if f < 2:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    while cube and lvl[cube[0]] < lf:
        cube = cube[1:]
    if not cube:
        return f
    cache = _cache(m)
    key = ("A", f, cube)
    cached = cache.get(key)
    if cached is not None:
        return cached
    v = var_[f]
    if v == cube[0]:
        rest = cube[1:]
        r0 = _forall(m, lo_[f], rest)
        if r0 == 0:
            result = 0
        else:
            result = and_(m, r0, _forall(m, hi_[f], rest))
    else:
        result = m._mk(v, _forall(m, lo_[f], cube), _forall(m, hi_[f], cube))
    cache[key] = result
    return result


def and_exists(m, f: int, g: int, variables: Sequence[int]) -> int:
    cube = _sorted_cube(m, variables)
    if not cube:
        return and_(m, f, g)
    return _and_exists(m, f, g, cube)


def _and_exists(m, f: int, g: int, cube: Tuple[int, ...]) -> int:
    if f == 0 or g == 0:
        return 0
    if f == 1 and g == 1:
        return 1
    if f == 1:
        return _exists(m, g, cube)
    if g == 1:
        return _exists(m, f, cube)
    if f == g:
        return _exists(m, f, cube)
    if f > g:
        f, g = g, f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lg = lvl[var_[g]]
    top = lf if lf <= lg else lg
    while cube and lvl[cube[0]] < top:
        cube = cube[1:]
    if not cube:
        return and_(m, f, g)
    cache = _cache(m)
    key = ("AE", f, g, cube)
    cached = cache.get(key)
    if cached is not None:
        return cached
    v = m._level2var[top]
    if var_[f] == v:
        f0, f1 = lo_[f], hi_[f]
    else:
        f0 = f1 = f
    if var_[g] == v:
        g0, g1 = lo_[g], hi_[g]
    else:
        g0 = g1 = g
    if v == cube[0]:
        rest = cube[1:]
        r0 = _and_exists(m, f0, g0, rest)
        if r0 == 1:
            result = 1
        else:
            result = or_(m, r0, _and_exists(m, f1, g1, rest))
    else:
        result = m._mk(
            v, _and_exists(m, f0, g0, cube), _and_exists(m, f1, g1, cube)
        )
    cache[key] = result
    return result


# ----------------------------------------------------------------------
# cofactor.py (seed)
# ----------------------------------------------------------------------


def cofactor(m, f: int, var: int, value: bool) -> int:
    if f < 2:
        return f
    cache = _cache(m)
    key = ("c1", f, var, value)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    v = var_[f]
    if lvl[v] > lvl[var]:
        result = f
    elif v == var:
        result = hi_[f] if value else lo_[f]
    else:
        result = m._mk(
            v,
            cofactor(m, lo_[f], var, value),
            cofactor(m, hi_[f], var, value),
        )
    cache[key] = result
    return result


def cofactor_cube(m, f: int, assignment: Dict[int, bool]) -> int:
    if f < 2 or not assignment:
        return f
    items = tuple(
        sorted(assignment.items(), key=lambda item: m._var2level[item[0]])
    )
    return _cofactor_cube(m, f, items)


def _cofactor_cube(m, f: int, items) -> int:
    if f < 2 or not items:
        return f
    cache = _cache(m)
    key = ("cc", f, items)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    v = var_[f]
    lf = lvl[v]
    while items and lvl[items[0][0]] < lf:
        items = items[1:]
    if not items:
        result = f
    elif v == items[0][0]:
        child = hi_[f] if items[0][1] else lo_[f]
        result = _cofactor_cube(m, child, items[1:])
    else:
        result = m._mk(
            v,
            _cofactor_cube(m, lo_[f], items),
            _cofactor_cube(m, hi_[f], items),
        )
    cache[key] = result
    return result


def constrain(m, f: int, c: int) -> int:
    if c == 0:
        raise BDDError("constrain by the empty care set is undefined")
    return _constrain(m, f, c)


def _constrain(m, f: int, c: int) -> int:
    if c == 1 or f < 2:
        return f
    if f == c:
        return 1
    cache = _cache(m)
    key = ("gc", f, c)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lc = lvl[var_[c]]
    level = lf if lf <= lc else lc
    v = m._level2var[level]
    if var_[f] == v:
        f0, f1 = lo_[f], hi_[f]
    else:
        f0 = f1 = f
    if var_[c] == v:
        c0, c1 = lo_[c], hi_[c]
    else:
        c0 = c1 = c
    if c0 == 0:
        result = _constrain(m, f1, c1)
    elif c1 == 0:
        result = _constrain(m, f0, c0)
    else:
        result = m._mk(v, _constrain(m, f0, c0), _constrain(m, f1, c1))
    cache[key] = result
    return result


def restrict(m, f: int, c: int) -> int:
    if c == 0:
        raise BDDError("restrict by the empty care set is undefined")
    return _restrict(m, f, c)


def _restrict(m, f: int, c: int) -> int:
    if c == 1 or f < 2:
        return f
    if f == c:
        return 1
    cache = _cache(m)
    key = ("rs", f, c)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lc = lvl[var_[c]]
    if lc < lf:
        result = _restrict(m, f, or_(m, lo_[c], hi_[c]))
    else:
        v = var_[f]
        f0, f1 = lo_[f], hi_[f]
        if var_[c] == v:
            c0, c1 = lo_[c], hi_[c]
        else:
            c0 = c1 = c
        if c0 == 0:
            result = _restrict(m, f1, c1)
        elif c1 == 0:
            result = _restrict(m, f0, c0)
        else:
            result = m._mk(v, _restrict(m, f0, c0), _restrict(m, f1, c1))
    cache[key] = result
    return result


# ----------------------------------------------------------------------
# substitute.py (seed)
# ----------------------------------------------------------------------


def compose(m, f: int, var: int, g: int) -> int:
    if f < 2:
        return f
    cache = _cache(m)
    key = ("C", f, var, g)
    cached = cache.get(key)
    if cached is not None:
        return cached
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    lf = lvl[var_[f]]
    lv = lvl[var]
    if lf > lv:
        result = f
    elif var_[f] == var:
        result = ite(m, g, hi_[f], lo_[f])
    else:
        r0 = compose(m, lo_[f], var, g)
        r1 = compose(m, hi_[f], var, g)
        v_node = m._mk(var_[f], 0, 1)
        result = ite(m, v_node, r1, r0)
    cache[key] = result
    return result


def vector_compose(m, f: int, mapping: Dict[int, int]) -> int:
    if f < 2 or not mapping:
        return f
    lvl = m._var2level
    max_level = max(lvl[v] for v in mapping)
    memo: Dict[int, int] = {}
    return _vector_compose(m, f, mapping, max_level, memo)


def _vector_compose(m, f, mapping, max_level, memo):
    if f < 2:
        return f
    var_, lo_, hi_, lvl = m._var, m._lo, m._hi, m._var2level
    v = var_[f]
    if lvl[v] > max_level:
        return f
    cached = memo.get(f)
    if cached is not None:
        return cached
    r0 = _vector_compose(m, lo_[f], mapping, max_level, memo)
    r1 = _vector_compose(m, hi_[f], mapping, max_level, memo)
    g = mapping.get(v)
    if g is None:
        g = m._mk(v, 0, 1)
    result = ite(m, g, r1, r0)
    memo[f] = result
    return result


def rename(m, f: int, var_map: Dict[int, int]) -> int:
    from repro.bdd import traversal as _traversal

    if f < 2 or not var_map:
        return f
    support = set(_traversal.support(m, f))
    effective = {v: w for v, w in var_map.items() if v in support and v != w}
    if not effective:
        return f
    lvl = m._var2level
    targets = set(effective.values())
    untouched = support - set(effective)
    collision = bool(targets & untouched)
    if not collision:
        pairs = [(lvl[v], lvl[effective.get(v, v)]) for v in support]
        pairs.sort()
        monotone = all(
            pairs[i][1] < pairs[i + 1][1] for i in range(len(pairs) - 1)
        )
        if monotone:
            memo: Dict[int, int] = {}
            return _rename_monotone(m, f, effective, memo)
    literal_map = {v: m._mk(w, 0, 1) for v, w in effective.items()}
    return vector_compose(m, f, literal_map)


def _rename_monotone(m, f, var_map, memo):
    if f < 2:
        return f
    cached = memo.get(f)
    if cached is not None:
        return cached
    v = m._var[f]
    result = m._mk(
        var_map.get(v, v),
        _rename_monotone(m, m._lo[f], var_map, memo),
        _rename_monotone(m, m._hi[f], var_map, memo),
    )
    memo[f] = result
    return result


# ----------------------------------------------------------------------
# Installation: run a whole manager on the reference kernels
# ----------------------------------------------------------------------


def install_reference_kernels(bdd: BDD) -> BDD:
    """Instance-bind the seed recursive kernels onto ``bdd``.

    Every public operation method of the manager is overridden so that
    engines, BFV code and tests exercising this instance run the *seed*
    implementation (shared tuple-keyed cache, cleared wholesale at GC
    and reorder — the original behavior).  Other ``BDD`` instances are
    unaffected.  Returns ``bdd`` for chaining.
    """
    _cache(bdd)  # materialize the shared reference cache
    # Restore the seed's collection cadence too: engines collected at
    # every iteration checkpoint (RunMonitor honors this flag), wiping
    # the shared cache each time.  Without it, end-to-end "before"
    # numbers would borrow this PR's deferred-GC improvement.
    bdd.per_iteration_gc = True

    def bind(name, fn):
        setattr(bdd, name, types.MethodType(fn, bdd))

    bind("not_", lambda self, f: not_(self, f))
    bind("and_", lambda self, f, g: and_(self, f, g))
    bind("or_", lambda self, f, g: or_(self, f, g))
    bind("xor", lambda self, f, g: xor(self, f, g))
    bind("ite", lambda self, f, g, h: ite(self, f, g, h))
    bind("equiv", lambda self, f, g: not_(self, xor(self, f, g)))
    bind("implies", lambda self, f, g: or_(self, not_(self, f), g))
    bind("diff", lambda self, f, g: and_(self, f, not_(self, g)))

    def _conjoin(self, nodes: Iterable[int]) -> int:
        result = 1
        for node in nodes:
            result = and_(self, result, node)
            if result == 0:
                break
        return result

    def _disjoin(self, nodes: Iterable[int]) -> int:
        result = 0
        for node in nodes:
            result = or_(self, result, node)
            if result == 1:
                break
        return result

    bind("conjoin", _conjoin)
    bind("disjoin", _disjoin)
    bind(
        "exists",
        lambda self, variables, f: exists(
            self, f, self._resolve_vars(variables)
        ),
    )
    bind(
        "forall",
        lambda self, variables, f: forall(
            self, f, self._resolve_vars(variables)
        ),
    )
    bind(
        "and_exists",
        lambda self, f, g, variables: and_exists(
            self, f, g, self._resolve_vars(variables)
        ),
    )
    bind(
        "cofactor",
        lambda self, f, var, value: cofactor(
            self, f, self.var_index(var), bool(value)
        ),
    )
    # The seed had no fused cofactor pair: two independent walks.
    bind(
        "cofactors",
        lambda self, f, var: (
            cofactor(self, f, self.var_index(var), False),
            cofactor(self, f, self.var_index(var), True),
        ),
    )
    bind(
        "cofactor_cube",
        lambda self, f, assignment: cofactor_cube(
            self,
            f,
            {self.var_index(v): bool(val) for v, val in assignment.items()},
        ),
    )
    bind("constrain", lambda self, f, c: constrain(self, f, c))
    bind("restrict", lambda self, f, c: restrict(self, f, c))
    bind(
        "compose",
        lambda self, f, var, g: compose(self, f, self.var_index(var), g),
    )
    bind(
        "vector_compose",
        lambda self, f, mapping: vector_compose(
            self, f, {self.var_index(v): g for v, g in mapping.items()}
        ),
    )
    bind(
        "rename",
        lambda self, f, var_map: rename(
            self,
            f,
            {
                self.var_index(old): self.var_index(new)
                for old, new in var_map.items()
            },
        ),
    )

    def _collect_garbage(self, roots=()):
        # Seed behavior: the shared computed table is wiped at every GC.
        self._reference_cache.clear()
        return BDD.collect_garbage(self, roots)

    def _clear_cache(self):
        self._reference_cache.clear()
        return BDD.clear_cache(self)

    bind("collect_garbage", _collect_garbage)
    bind("clear_cache", _clear_cache)
    return bdd

"""Per-operation computed tables: stats, eviction, GC sweep, accounting."""

import pytest

from repro.bdd import BDD
from repro.bdd import cache as cache_mod
from repro.errors import VariableError


def fresh():
    return BDD(["a", "b", "c", "d"])


class TestStats:
    def test_cache_stats_shape(self):
        bdd = fresh()
        stats = bdd.cache_stats()
        assert set(stats) == set(cache_mod.OP_NAMES) | {"total"}
        for entry in stats.values():
            assert set(entry) == {
                "hits",
                "misses",
                "inserts",
                "evictions",
                "swept",
                "entries",
                "hit_rate",
            }

    def test_hits_and_misses_are_counted(self):
        bdd = fresh()
        a, b = bdd.var("a"), bdd.var("b")
        bdd.and_(a, b)
        first = bdd.cache_stats()["and"]
        assert first["misses"] >= 1
        assert first["inserts"] >= 1
        bdd.and_(a, b)  # repeat: top-level probe hits
        second = bdd.cache_stats()["and"]
        assert second["hits"] > first["hits"]
        assert second["misses"] == first["misses"]

    def test_per_op_tables_are_independent(self):
        bdd = fresh()
        a, b = bdd.var("a"), bdd.var("b")
        bdd.and_(a, b)
        stats = bdd.cache_stats()
        assert stats["and"]["entries"] > 0
        assert stats["or"]["entries"] == 0
        assert stats["xor"]["entries"] == 0

    def test_stats_json_safe(self):
        import json

        bdd = fresh()
        bdd.and_(bdd.var("a"), bdd.var("b"))
        json.dumps(bdd.cache_stats())


class TestEviction:
    def test_tables_stay_bounded(self):
        bdd = BDD(["x%d" % i for i in range(24)])
        bdd.cache_limit = 64
        import random

        rng = random.Random(0)
        f = bdd.false
        for _ in range(300):
            cube = bdd.cube(
                {v: rng.random() < 0.5 for v in rng.sample(range(24), 8)}
            )
            f = bdd.or_(f, cube)
        stats = bdd.cache_stats()
        for name in cache_mod.OP_NAMES:
            assert stats[name]["entries"] <= 64
        assert stats["or"]["evictions"] > 0

    def test_eviction_preserves_correctness(self):
        bdd = BDD(["x%d" % i for i in range(12)])
        bdd.cache_limit = 8  # pathological: constant thrash
        import random

        from ..conftest import build_expr, random_expr, truth_table

        rng = random.Random(1)
        for _ in range(20):
            expr = random_expr(rng, 6, 3)
            node = build_expr(bdd, expr)
            from ..conftest import expr_table

            assert truth_table(bdd, node, 6) == expr_table(expr, 6)


class TestGCSweep:
    def test_live_entries_survive_gc(self):
        bdd = fresh()
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        # The operand node ``a`` is not a child of ``a AND b`` (= mk(a, 0, b)),
        # so every key participant needs to be a root for the entry to live.
        for node in (a, b, f):
            bdd.incref(node)
        swept_before = bdd.cache_stats()["total"]["swept"]
        bdd.collect_garbage()
        stats = bdd.cache_stats()["and"]
        assert stats["entries"] > 0  # operands and result all live
        hits_before = stats["hits"]
        assert bdd.and_(a, b) == f
        assert bdd.cache_stats()["and"]["hits"] > hits_before
        assert bdd.cache_stats()["total"]["swept"] == swept_before

    def test_dead_entries_are_swept(self):
        bdd = fresh()
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        g = bdd.and_(bdd.or_(a, b), c)  # intermediate or-node is garbage
        del g
        bdd.collect_garbage()  # nothing incref'd: results die
        stats = bdd.cache_stats()
        assert stats["total"]["swept"] > 0
        assert stats["total"]["entries"] == 0
        bdd.check_invariants()

    def test_sweep_keeps_only_fully_live_entries(self):
        tables = cache_mod.new_tables()
        stats = cache_mod.new_stats()
        # and-entry: operands 2,3 -> result 4; another with dead operand 5.
        tables[cache_mod.OP_AND][(3 << 32) | 2] = 4
        tables[cache_mod.OP_AND][(5 << 32) | 2] = 4
        marked = bytearray([1, 1, 1, 1, 1, 0])
        dropped = cache_mod.sweep(tables, stats, marked)
        assert dropped == 1
        assert tables[cache_mod.OP_AND] == {(3 << 32) | 2: 4}
        assert stats[cache_mod.OP_AND][cache_mod.SWEPT] == 1

    def test_clear_cache_empties_tables_but_keeps_counters(self):
        bdd = fresh()
        bdd.and_(bdd.var("a"), bdd.var("b"))
        misses = bdd.cache_stats()["total"]["misses"]
        assert misses > 0
        bdd.clear_cache()
        stats = bdd.cache_stats()["total"]
        assert stats["entries"] == 0
        assert stats["misses"] == misses


class TestOpCountAccounting:
    def test_conjoin_counts_kernel_invocations(self):
        bdd = fresh()
        nodes = [bdd.var(v) for v in ("a", "b", "c")]
        before = bdd.op_count
        bdd.conjoin(nodes)
        assert bdd.op_count == before + 3  # one AND kernel per element

    def test_equiv_counts_at_least_two_kernel_invocations(self):
        bdd = fresh()
        a, b = bdd.var("a"), bdd.var("b")
        before = bdd.op_count
        bdd.equiv(a, b)
        # XOR + NOT at the top; XOR may invoke nested NOT kernels while
        # complementing cofactors, and those invocations count too.
        assert bdd.op_count >= before + 2

    def test_implies_and_diff_count_two(self):
        bdd = fresh()
        a, b = bdd.var("a"), bdd.var("b")
        before = bdd.op_count
        bdd.implies(a, b)
        assert bdd.op_count == before + 2
        before = bdd.op_count
        bdd.diff(a, b)
        assert bdd.op_count == before + 2

    def test_single_kernel_ops_count_once(self):
        bdd = fresh()
        a, b = bdd.var("a"), bdd.var("b")
        for call in (
            lambda: bdd.and_(a, b),
            lambda: bdd.or_(a, b),
            lambda: bdd.not_(a),
        ):
            before = bdd.op_count
            call()
            assert bdd.op_count == before + 1
        # XOR additionally invokes the NOT kernel to complement cofactors.
        before = bdd.op_count
        bdd.xor(a, b)
        assert bdd.op_count >= before + 1


class TestCubeConflicts:
    def test_cube_conflicting_polarity_raises(self):
        bdd = fresh()
        with pytest.raises(VariableError):
            bdd.cube({"a": True, 0: False})  # same variable, two spellings

    def test_cube_duplicate_same_polarity_ok(self):
        bdd = fresh()
        node = bdd.cube({"a": True, 0: True})
        assert node == bdd.cube({"a": True})

    def test_cofactor_cube_conflicting_polarity_raises(self):
        bdd = fresh()
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        with pytest.raises(VariableError):
            bdd.cofactor_cube(f, {"a": True, 0: False})

"""Cofactor, constrain and restrict tests (properties + brute force)."""

import itertools
import random

import pytest

from repro.bdd import BDD
from repro.errors import BDDError

from ..conftest import build_expr, eval_expr, random_expr

NVARS = 5


@pytest.fixture
def bdd():
    return BDD(["x%d" % i for i in range(NVARS)])


class TestShannonCofactor:
    def test_basic(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(1))
        assert bdd.cofactor(f, 0, True) == bdd.var(1)
        assert bdd.cofactor(f, 0, False) == bdd.false

    def test_missing_var(self, bdd):
        f = bdd.var(2)
        assert bdd.cofactor(f, 0, True) == f

    def test_shannon_expansion(self, bdd):
        rng = random.Random(1)
        for _ in range(25):
            f = build_expr(bdd, random_expr(rng, NVARS, 3))
            v = rng.randrange(NVARS)
            lo = bdd.cofactor(f, v, False)
            hi = bdd.cofactor(f, v, True)
            rebuilt = bdd.ite(bdd.var(v), hi, lo)
            assert rebuilt == f

    def test_cofactor_cube(self, bdd):
        f = bdd.xor(bdd.var(0), bdd.and_(bdd.var(1), bdd.var(2)))
        g = bdd.cofactor_cube(f, {0: True, 2: False})
        expected = bdd.cofactor(bdd.cofactor(f, 0, True), 2, False)
        assert g == expected

    def test_cofactor_cube_empty(self, bdd):
        f = bdd.var(1)
        assert bdd.cofactor_cube(f, {}) == f


class TestConstrain:
    def test_agrees_on_care_set(self):
        rng = random.Random(9)
        for _ in range(60):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            f = build_expr(bdd, random_expr(rng, NVARS, 3))
            c = build_expr(bdd, random_expr(rng, NVARS, 3))
            if c == bdd.false:
                continue
            con = bdd.constrain(f, c)
            assert bdd.and_(con, c) == bdd.and_(f, c)

    def test_identity_cases(self, bdd):
        f = bdd.var(0)
        assert bdd.constrain(f, bdd.true) == f
        assert bdd.constrain(f, f) == bdd.true
        assert bdd.constrain(bdd.true, bdd.var(1)) == bdd.true

    def test_false_care_set_rejected(self, bdd):
        with pytest.raises(BDDError):
            bdd.constrain(bdd.var(0), bdd.false)

    def test_nearest_point_semantics(self, bdd):
        # care set = {x0=1}; constrain maps x0=0 points to their nearest
        # care neighbour (flip x0), so the result is f|x0=1.
        f = bdd.and_(bdd.var(0), bdd.var(1))
        con = bdd.constrain(f, bdd.var(0))
        assert con == bdd.var(1)

    def test_image_property_for_cubes(self, bdd):
        # For a cube care set, constrain is full evaluation at the cube.
        f = bdd.xor(bdd.var(0), bdd.var(1))
        cube = bdd.cube({0: True, 1: False})
        assert bdd.constrain(f, cube) == bdd.true


class TestRestrict:
    def test_agrees_on_care_set(self):
        rng = random.Random(31)
        for _ in range(60):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            f = build_expr(bdd, random_expr(rng, NVARS, 3))
            c = build_expr(bdd, random_expr(rng, NVARS, 3))
            if c == bdd.false:
                continue
            res = bdd.restrict(f, c)
            assert bdd.and_(res, c) == bdd.and_(f, c)

    def test_never_larger_support_growth(self):
        # restrict drops care-set variables f does not depend on, while
        # constrain may introduce them.
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        f = bdd.var(1)
        c = bdd.or_(bdd.and_(bdd.var(0), bdd.var(1)), bdd.not_(bdd.var(0)))
        res = bdd.restrict(f, c)
        assert set(bdd.support(res)) <= {1}

    def test_false_care_set_rejected(self, bdd):
        with pytest.raises(BDDError):
            bdd.restrict(bdd.var(0), bdd.false)

    def test_reduces_size_on_dont_cares(self, bdd):
        # f arbitrary outside c: restrict may simplify to a constant.
        f = bdd.and_(bdd.var(0), bdd.var(1))
        c = bdd.and_(bdd.var(0), bdd.var(1))
        assert bdd.restrict(f, c) == bdd.true

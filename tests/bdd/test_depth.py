"""Deep-order stress: iterative kernels on orders the recursive seed
kernels could not traverse without blowing the Python stack.

The workhorse is the parity (XOR-chain) function: both cofactors are
non-trivial at every one of its ``NVARS`` levels, so nothing short
circuits and every kernel must genuinely descend the full order.
"""

import sys

import pytest

from repro.bdd import BDD, expr
from repro.errors import ResourceLimitError

from . import reference_kernels as ref

# Deeper than CPython's default recursion limit (1000): the recursive
# seed kernels needed at least one frame per level.
NVARS = 1200


def parity_manager():
    bdd = BDD(["x%d" % i for i in range(NVARS)])
    parity = bdd.false
    for i in range(NVARS):
        parity = bdd.xor(parity, bdd.var(i))
    odd = bdd.not_(parity)
    for node in (parity, odd):
        bdd.incref(node)
    return bdd, parity, odd


class TestDeepOrders:
    def test_recursive_reference_overflows(self):
        """The seed kernels genuinely cannot handle this depth."""
        if sys.getrecursionlimit() > 2 * NVARS:
            pytest.skip("interpreter recursion limit raised externally")
        bdd, parity, odd = parity_manager()
        with pytest.raises(RecursionError):
            ref.and_(bdd, parity, odd)

    def test_apply_completes_on_deep_chain(self):
        bdd, parity, odd = parity_manager()
        assert bdd.and_(parity, odd) == 0
        assert bdd.or_(parity, odd) == 1
        assert bdd.xor(parity, odd) == 1
        assert bdd.not_(odd) == parity
        assert bdd.ite(parity, odd, parity) == 0

    def test_quantify_completes_on_deep_chain(self):
        bdd, parity, odd = parity_manager()
        assert bdd.exists(range(NVARS), parity) == 1
        assert bdd.forall(range(NVARS), parity) == 0
        assert bdd.exists([0], parity) == 1  # flipping x0 flips parity
        assert bdd.and_exists(parity, odd, range(NVARS)) == 0
        assert bdd.and_exists(parity, parity, range(NVARS)) == 1

    def test_cofactor_and_substitute_complete_on_deep_chain(self):
        bdd, parity, odd = parity_manager()
        rest = bdd.false  # parity of x1..x_{n-1}
        for i in range(1, NVARS):
            rest = bdd.xor(rest, bdd.var(i))
        assert bdd.cofactor(parity, 0, False) == rest
        assert bdd.cofactor(parity, 0, True) == bdd.not_(rest)
        assert bdd.constrain(parity, parity) == 1
        assert bdd.restrict(parity, parity) == 1
        assert bdd.compose(parity, 0, bdd.false) == rest
        assignment = {i: False for i in range(0, NVARS, 2)}
        half = bdd.cofactor_cube(parity, assignment)
        rest_odd = bdd.false  # parity of the odd-indexed variables
        for i in range(1, NVARS, 2):
            rest_odd = bdd.xor(rest_odd, bdd.var(i))
        assert half == rest_odd
        assert bdd.rename(parity, {}) == parity

    def test_traversals_complete_on_deep_chain(self):
        bdd, parity, odd = parity_manager()
        assert bdd.sat_count(parity) == 1 << (NVARS - 1)
        model = next(bdd.iter_models(parity))
        assert len(model) == NVARS
        assert sum(model.values()) % 2 == 1
        assert bdd.evaluate(parity, {i: i == 0 for i in range(NVARS)})

    def test_deep_chain_survives_gc(self):
        bdd, parity, odd = parity_manager()
        bdd.and_(parity, odd)
        bdd.collect_garbage()
        bdd.check_invariants()
        assert bdd.or_(parity, odd) == 1


class TestExprDepth:
    def test_deeply_nested_expression_reports_depth(self):
        bdd = BDD(["a"])
        n = sys.getrecursionlimit()
        text = "(" * n + "a" + ")" * n
        with pytest.raises(ResourceLimitError) as info:
            expr.parse(bdd, text)
        assert info.value.kind == "depth"

    def test_moderate_nesting_still_parses(self):
        bdd = BDD(["a"])
        text = "(" * 50 + "a" + ")" * 50
        assert expr.parse(bdd, text) == bdd.var("a")

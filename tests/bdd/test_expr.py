"""Expression parser and printer tests."""

import itertools
import random

import pytest

from repro.bdd import BDD, parse, to_expr
from repro.errors import BDDError, VariableError

from ..conftest import build_expr, random_expr


@pytest.fixture
def bdd():
    return BDD(["a", "b", "c", "d"])


class TestParsing:
    def test_literals_and_constants(self, bdd):
        assert parse(bdd, "a") == bdd.var("a")
        assert parse(bdd, "!a") == bdd.not_(bdd.var("a"))
        assert parse(bdd, "~a") == bdd.not_(bdd.var("a"))
        assert parse(bdd, "1") == bdd.true
        assert parse(bdd, "true") == bdd.true
        assert parse(bdd, "0") == bdd.false
        assert parse(bdd, "false") == bdd.false

    def test_binary_operators(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert parse(bdd, "a & b") == bdd.and_(a, b)
        assert parse(bdd, "a | b") == bdd.or_(a, b)
        assert parse(bdd, "a ^ b") == bdd.xor(a, b)
        assert parse(bdd, "a -> b") == bdd.implies(a, b)
        assert parse(bdd, "a <-> b") == bdd.equiv(a, b)
        assert parse(bdd, "a == b") == bdd.equiv(a, b)

    def test_precedence(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        assert parse(bdd, "a | b & c") == bdd.or_(a, bdd.and_(b, c))
        assert parse(bdd, "a ^ b | c") == bdd.or_(bdd.xor(a, b), c)
        assert parse(bdd, "!a & b") == bdd.and_(bdd.not_(a), b)
        assert parse(bdd, "a -> b | c") == bdd.implies(a, bdd.or_(b, c))
        assert parse(bdd, "a <-> b -> c") == bdd.equiv(
            a, bdd.implies(b, c)
        )

    def test_implies_right_associative(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        assert parse(bdd, "a -> b -> c") == bdd.implies(
            a, bdd.implies(b, c)
        )

    def test_parentheses(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        assert parse(bdd, "(a | b) & c") == bdd.and_(bdd.or_(a, b), c)
        assert parse(bdd, "!(a & b)") == bdd.not_(bdd.and_(a, b))

    def test_netlist_style_names(self):
        bdd = BDD(["u0_s1", "reg[3]", "n.q"])
        f = parse(bdd, "u0_s1 & reg[3] | n.q")
        assert set(bdd.support_names(f)) == {"u0_s1", "reg[3]", "n.q"}

    def test_unknown_name_rejected(self, bdd):
        with pytest.raises(VariableError):
            parse(bdd, "a & zz")

    def test_auto_declare(self, bdd):
        before = bdd.num_vars
        f = parse(bdd, "a & fresh", auto_declare=True)
        assert bdd.num_vars == before + 1
        assert "fresh" in bdd.support_names(f)

    @pytest.mark.parametrize(
        "bad",
        ["", "a &", "& a", "(a", "a)", "a b", "a ! b", "a @ b"],
    )
    def test_syntax_errors(self, bdd, bad):
        with pytest.raises(BDDError):
            parse(bdd, bad)

    def test_equivalences(self, bdd):
        # classic identities through the parser
        assert parse(bdd, "a -> b") == parse(bdd, "!a | b")
        assert parse(bdd, "a <-> b") == parse(bdd, "!(a ^ b)")
        assert parse(bdd, "!(a | b)") == parse(bdd, "!a & !b")


class TestPrinting:
    def test_constants(self, bdd):
        assert to_expr(bdd, bdd.true) == "true"
        assert to_expr(bdd, bdd.false) == "false"

    def test_roundtrip_random(self):
        rng = random.Random(4)
        names = ["x%d" % i for i in range(5)]
        for _ in range(40):
            bdd = BDD(names)
            node = build_expr(bdd, random_expr(rng, 5, 4))
            text = to_expr(bdd, node)
            assert parse(bdd, text) == node

    def test_cube_limit(self, bdd):
        f = parse(bdd, "a ^ b ^ c ^ d")
        with pytest.raises(BDDError):
            to_expr(bdd, f, limit=2)

"""Tests for the operator-overloaded Function wrapper."""

import pytest

from repro.bdd import BDD, Function


@pytest.fixture
def bdd():
    return BDD(["a", "b", "c"])


@pytest.fixture
def a(bdd):
    return Function.var(bdd, "a")


@pytest.fixture
def b(bdd):
    return Function.var(bdd, "b")


class TestConstruction:
    def test_constants(self, bdd):
        assert Function.true(bdd).is_true()
        assert Function.false(bdd).is_false()

    def test_var(self, a):
        assert a.evaluate(a=True)
        assert not a.evaluate(a=False)

    def test_pins_node(self, bdd, a, b):
        f = a & b
        bdd.collect_garbage()
        assert f.evaluate(a=True, b=True)


class TestOperators:
    def test_and_or_xor_invert(self, a, b):
        assert (a & b).evaluate(a=True, b=True)
        assert not (a & b).evaluate(a=True, b=False)
        assert (a | b).evaluate(a=False, b=True)
        assert (a ^ b).evaluate(a=True, b=False)
        assert (~a).evaluate(a=False)

    def test_bool_operands(self, a):
        assert (a & True) == a
        assert (a | False) == a
        assert (a & False).is_false()

    def test_implies_equiv_ite(self, a, b, bdd):
        assert a.implies(a).is_true()
        assert a.equiv(a).is_true()
        c = Function.var(bdd, "c")
        mux = a.ite(b, c)
        assert mux.evaluate(a=True, b=True, c=False)
        assert not mux.evaluate(a=False, b=True, c=False)

    def test_equality_with_bool(self, a):
        assert (a | ~a) == True  # noqa: E712 - deliberate
        assert (a & ~a) == False  # noqa: E712

    def test_truthiness_is_ambiguous(self, a):
        with pytest.raises(TypeError):
            bool(a)

    def test_cross_manager_rejected(self, a):
        other = BDD(["a"])
        with pytest.raises(ValueError):
            a & Function.var(other, "a")

    def test_type_error(self, a):
        with pytest.raises(TypeError):
            a & 3


class TestQueriesAndTransforms:
    def test_support_and_size(self, a, b):
        f = a & ~b
        assert f.support() == ["a", "b"]
        assert f.dag_size() >= 3

    def test_sat_count(self, a, b):
        assert (a & b).sat_count() == 2  # over 3 declared vars

    def test_models(self, a, b):
        f = a & b
        model = f.pick_model()
        assert model["a"] and model["b"]
        assert len(list(f.iter_models())) == 1

    def test_quantify(self, a, b):
        f = a & b
        assert f.exists("a") == b
        assert f.forall("a").is_false()

    def test_cofactor_compose_rename(self, a, b, bdd):
        f = a & b
        assert f.cofactor(a=True) == b
        assert f.compose("a", Function.true(bdd)) == b
        g = f.rename({"a": "c"})
        assert g.support() == ["b", "c"]

    def test_constrain_restrict(self, a, b):
        f = a & b
        assert f.constrain(a) == b
        assert f.restrict(a & b).is_true()

    def test_repr_and_dot(self, a, b):
        f = a & b
        assert "vars=" in repr(f)
        assert repr(Function.true(f.bdd)) == "Function(TRUE)"
        assert "digraph" in f.to_dot()

    def test_hashable(self, a, b):
        assert len({a & b, a & b, a | b}) == 2

"""Iterative kernels vs the seed recursive reference oracle.

Both implementations run on the *same* manager; canonicity then makes
node-handle equality a complete correctness check.  Seeded randomized
sweeps cover every converted operation, including cache correctness
across garbage collections and reorders.
"""

import random

import pytest

from repro.bdd import BDD
from repro.bdd import cofactor as it_cofactor
from repro.bdd import operations as it_ops
from repro.bdd import quantify as it_quantify
from repro.bdd import substitute as it_substitute

from ..conftest import build_expr, random_expr, truth_table
from . import reference_kernels as ref

NVARS = 7


def make_pool(bdd, rng, count=12, depth=4):
    """Random nodes (plus the constants) to draw operands from."""
    pool = [0, 1]
    for _ in range(count):
        node = build_expr(bdd, random_expr(rng, NVARS, depth))
        bdd.incref(node)
        pool.append(node)
    return pool


class TestBinaryOps:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_and_or_xor_match_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(200):
            f, g = rng.choice(pool), rng.choice(pool)
            assert it_ops.and_(bdd, f, g) == ref.and_(bdd, f, g)
            assert it_ops.or_(bdd, f, g) == ref.or_(bdd, f, g)
            assert it_ops.xor(bdd, f, g) == ref.xor(bdd, f, g)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_not_and_ite_match_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(200):
            f, g, h = rng.choice(pool), rng.choice(pool), rng.choice(pool)
            assert it_ops.not_(bdd, f) == ref.not_(bdd, f)
            assert it_ops.ite(bdd, f, g, h) == ref.ite(bdd, f, g, h)


class TestQuantification:
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_exists_forall_match_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(120):
            f = rng.choice(pool)
            k = rng.randrange(1, NVARS + 1)
            variables = rng.sample(range(NVARS), k)
            assert it_quantify.exists(bdd, f, variables) == ref.exists(
                bdd, f, variables
            )
            assert it_quantify.forall(bdd, f, variables) == ref.forall(
                bdd, f, variables
            )

    @pytest.mark.parametrize("seed", [8, 9])
    def test_and_exists_matches_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(120):
            f, g = rng.choice(pool), rng.choice(pool)
            k = rng.randrange(1, NVARS + 1)
            variables = rng.sample(range(NVARS), k)
            assert it_quantify.and_exists(
                bdd, f, g, variables
            ) == ref.and_exists(bdd, f, g, variables)


class TestCofactoring:
    @pytest.mark.parametrize("seed", [10, 11])
    def test_cofactors_match_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(150):
            f = rng.choice(pool)
            var = rng.randrange(NVARS)
            value = rng.random() < 0.5
            assert it_cofactor.cofactor(bdd, f, var, value) == ref.cofactor(
                bdd, f, var, value
            )
            # The fused pair kernel must agree with two single walks.
            assert it_cofactor.cofactor2(bdd, f, var) == (
                ref.cofactor(bdd, f, var, False),
                ref.cofactor(bdd, f, var, True),
            )
            assignment = {
                v: rng.random() < 0.5
                for v in rng.sample(range(NVARS), rng.randrange(1, NVARS))
            }
            assert it_cofactor.cofactor_cube(
                bdd, f, assignment
            ) == ref.cofactor_cube(bdd, f, assignment)

    @pytest.mark.parametrize("seed", [12, 13])
    def test_constrain_restrict_match_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(150):
            f, c = rng.choice(pool), rng.choice(pool)
            if c == 0:
                continue
            assert it_cofactor.constrain(bdd, f, c) == ref.constrain(bdd, f, c)
            assert it_cofactor.restrict(bdd, f, c) == ref.restrict(bdd, f, c)


class TestSubstitution:
    @pytest.mark.parametrize("seed", [14, 15])
    def test_compose_matches_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(120):
            f, g = rng.choice(pool), rng.choice(pool)
            var = rng.randrange(NVARS)
            assert it_substitute.compose(bdd, f, var, g) == ref.compose(
                bdd, f, var, g
            )

    @pytest.mark.parametrize("seed", [16, 17])
    def test_vector_compose_and_rename_match_reference(self, seed):
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        for _ in range(80):
            f = rng.choice(pool)
            mapping = {
                v: rng.choice(pool)
                for v in rng.sample(range(NVARS), rng.randrange(1, NVARS))
            }
            assert it_substitute.vector_compose(
                bdd, f, mapping
            ) == ref.vector_compose(bdd, f, mapping)
            perm = list(range(NVARS))
            rng.shuffle(perm)
            var_map = dict(zip(range(NVARS), perm))
            assert it_substitute.rename(bdd, f, var_map) == ref.rename(
                bdd, f, var_map
            )


class TestLifecycleCacheCorrectness:
    def test_results_stable_across_gc(self):
        """Surviving cache entries must stay correct after collections."""
        rng = random.Random(42)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        checks = []
        for _ in range(60):
            f, g = rng.choice(pool), rng.choice(pool)
            checks.append((f, g, it_ops.and_(bdd, f, g), it_ops.xor(bdd, f, g)))
        for round_ in range(4):
            bdd.collect_garbage()  # pool is incref'd; garbage goes away
            for f, g, expect_and, expect_xor in checks:
                # The kept results are themselves roots of nothing — they
                # may be collected, so recompute against the oracle.
                assert it_ops.and_(bdd, f, g) == ref.and_(bdd, f, g)
                assert it_ops.xor(bdd, f, g) == ref.xor(bdd, f, g)
            k = rng.randrange(1, NVARS + 1)
            variables = rng.sample(range(NVARS), k)
            for f, g, _, _ in checks[:20]:
                assert it_quantify.and_exists(
                    bdd, f, g, variables
                ) == ref.and_exists(bdd, f, g, variables)

    def test_results_stable_across_reorder(self):
        """Caches are cleared on reorder; fresh results must match."""
        rng = random.Random(43)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pool = make_pool(bdd, rng)
        pairs = [(rng.choice(pool), rng.choice(pool)) for _ in range(40)]
        for f, g in pairs:
            it_ops.and_(bdd, f, g)
            it_quantify.exists(bdd, f, [0, 2, 4])
        order = list(range(NVARS))
        rng.shuffle(order)
        bdd.reorder_to(order)
        for f, g in pairs:
            assert it_ops.and_(bdd, f, g) == ref.and_(bdd, f, g)
            assert it_quantify.exists(bdd, f, [0, 2, 4]) == ref.exists(
                bdd, f, [0, 2, 4]
            )
        bdd.check_invariants()

    def test_installed_reference_manager_matches_plain_manager(self):
        """install_reference_kernels drives a whole manager correctly."""
        rng = random.Random(44)
        expr_list = [random_expr(rng, NVARS, 4) for _ in range(20)]
        current = BDD(["x%d" % i for i in range(NVARS)])
        reference = ref.install_reference_kernels(
            BDD(["x%d" % i for i in range(NVARS)])
        )
        for expr in expr_list:
            a = build_expr(current, expr)
            b = build_expr(reference, expr)
            ea = current.exists([1, 3], a)
            eb = reference.exists([1, 3], b)
            # Node allocation order may differ between implementations, so
            # compare semantics (handles are only comparable same-manager).
            assert truth_table(current, a, NVARS) == truth_table(
                reference, b, NVARS
            )
            assert truth_table(current, ea, NVARS) == truth_table(
                reference, eb, NVARS
            )
        reference.collect_garbage()
        reference.check_invariants()

"""Unit tests for the BDD manager: storage, variables, refs and GC."""

import pytest

from repro.bdd import BDD
from repro.errors import BDDError, VariableError


class TestVariables:
    def test_declared_in_order(self):
        bdd = BDD(["a", "b", "c"])
        assert bdd.num_vars == 3
        assert bdd.order_names == ["a", "b", "c"]
        assert bdd.level_of("a") == 0
        assert bdd.level_of("c") == 2

    def test_add_var_defaults_name(self):
        bdd = BDD()
        var = bdd.add_var()
        assert bdd.var_name(var) == "x0"

    def test_duplicate_name_rejected(self):
        bdd = BDD(["a"])
        with pytest.raises(VariableError):
            bdd.add_var("a")

    def test_unknown_name_rejected(self):
        bdd = BDD(["a"])
        with pytest.raises(VariableError):
            bdd.var("zz")

    def test_unknown_index_rejected(self):
        bdd = BDD(["a"])
        with pytest.raises(VariableError):
            bdd.var(5)

    def test_var_and_nvar_literals(self):
        bdd = BDD(["a"])
        a = bdd.var("a")
        na = bdd.nvar("a")
        assert bdd.evaluate(a, {"a": True})
        assert not bdd.evaluate(a, {"a": False})
        assert bdd.evaluate(na, {"a": False})
        assert na == bdd.not_(a)

    def test_var_at_level_roundtrip(self):
        bdd = BDD(["a", "b"])
        for level in range(2):
            assert bdd.level_of(bdd.var_at_level(level)) == level


class TestNodeStructure:
    def test_terminals(self):
        bdd = BDD(["a"])
        assert bdd.is_terminal(bdd.true)
        assert bdd.is_terminal(bdd.false)
        assert not bdd.is_terminal(bdd.var("a"))

    def test_node_accessors(self):
        bdd = BDD(["a"])
        a = bdd.var("a")
        assert bdd.node_var(a) == 0
        assert bdd.node_children(a) == (bdd.false, bdd.true)
        with pytest.raises(BDDError):
            bdd.node_var(bdd.true)
        with pytest.raises(BDDError):
            bdd.node_children(bdd.false)

    def test_mk_is_canonical(self):
        bdd = BDD(["a", "b"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        g = bdd.and_(bdd.var("b"), bdd.var("a"))
        assert f == g

    def test_redundant_test_collapses(self):
        bdd = BDD(["a", "b"])
        a = bdd.var("a")
        # a AND a == a; no redundant node is created
        assert bdd.and_(a, a) == a

    def test_cube(self):
        bdd = BDD(["a", "b", "c"])
        cube = bdd.cube({"a": True, "c": False})
        assert bdd.evaluate(cube, {"a": True, "b": False, "c": False})
        assert not bdd.evaluate(cube, {"a": True, "b": False, "c": True})
        assert bdd.sat_count(cube) == 2

    def test_empty_cube_is_true(self):
        bdd = BDD(["a"])
        assert bdd.cube({}) == bdd.true

    def test_check_invariants_clean(self):
        bdd = BDD(["a", "b", "c"])
        bdd.xor(bdd.var("a"), bdd.and_(bdd.var("b"), bdd.var("c")))
        bdd.check_invariants()


class TestGarbageCollection:
    def test_unreferenced_nodes_are_collected(self):
        bdd = BDD(["a", "b", "c"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        before = bdd.num_nodes
        freed = bdd.collect_garbage()
        assert freed > 0
        assert bdd.num_nodes < before
        # f's slot may be reused; rebuilding must give a valid node again.
        f2 = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.evaluate(f2, {"a": True, "b": True})

    def test_incref_protects(self):
        bdd = BDD(["a", "b"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        bdd.incref(f)
        bdd.collect_garbage()
        assert bdd.evaluate(f, {"a": True, "b": True})
        bdd.check_invariants()

    def test_decref_releases(self):
        bdd = BDD(["a", "b"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        bdd.incref(f)
        bdd.decref(f)
        live_before = bdd.count_live()
        bdd.collect_garbage()
        assert bdd.count_live() <= live_before

    def test_roots_argument_protects(self):
        bdd = BDD(["a", "b"])
        f = bdd.or_(bdd.var("a"), bdd.var("b"))
        bdd.collect_garbage(roots=[f])
        assert bdd.evaluate(f, {"a": False, "b": True})

    def test_terminal_refcounting_is_noop(self):
        bdd = BDD(["a"])
        bdd.incref(bdd.true)
        bdd.decref(bdd.true)
        bdd.decref(bdd.false)
        bdd.collect_garbage()
        assert bdd.num_nodes >= 2

    def test_nested_incref(self):
        bdd = BDD(["a", "b"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        bdd.incref(f)
        bdd.incref(f)
        bdd.decref(f)
        bdd.collect_garbage()
        # still protected by the second reference
        assert bdd.evaluate(f, {"a": True, "b": True})

    def test_maybe_collect_threshold(self):
        bdd = BDD(["a", "b", "c", "d"])
        bdd.gc_threshold = 1
        bdd.xor(bdd.var("a"), bdd.var("b"))
        assert bdd.maybe_collect() > 0

    def test_gc_count_increments(self):
        bdd = BDD(["a"])
        before = bdd.gc_count
        bdd.collect_garbage()
        assert bdd.gc_count == before + 1


class TestStatistics:
    def test_peak_nodes_grows(self):
        bdd = BDD(["a", "b", "c", "d"])
        start = bdd.peak_nodes
        f = bdd.true
        for name in ("a", "b", "c", "d"):
            f = bdd.xor(f, bdd.var(name))
        assert bdd.peak_nodes > start

    def test_count_live_tracks_peak(self):
        bdd = BDD(["a", "b"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        bdd.incref(f)
        live = bdd.count_live()
        assert live >= 3
        assert bdd.peak_live >= live

    def test_reset_peak(self):
        bdd = BDD(["a", "b", "c"])
        f = bdd.conjoin([bdd.var("a"), bdd.var("b"), bdd.var("c")])
        bdd.incref(f)
        bdd.collect_garbage()
        bdd.reset_peak()
        assert bdd.peak_live == bdd.count_live()

    def test_op_count_increments(self):
        bdd = BDD(["a", "b"])
        before = bdd.op_count
        bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.op_count == before + 1


class TestBulkOps:
    def test_conjoin_disjoin(self):
        bdd = BDD(["a", "b", "c"])
        literals = [bdd.var(n) for n in ("a", "b", "c")]
        assert bdd.sat_count(bdd.conjoin(literals)) == 1
        assert bdd.sat_count(bdd.disjoin(literals)) == 7
        assert bdd.conjoin([]) == bdd.true
        assert bdd.disjoin([]) == bdd.false

    def test_conjoin_short_circuits_on_false(self):
        bdd = BDD(["a"])
        assert bdd.conjoin([bdd.false, bdd.var("a")]) == bdd.false

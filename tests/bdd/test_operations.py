"""Boolean operation tests: truth tables, identities, random cross-checks."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD

from ..conftest import build_expr, expr_table, random_expr, truth_table


@pytest.fixture
def bdd():
    return BDD(["a", "b", "c", "d"])


def lits(bdd):
    return bdd.var("a"), bdd.var("b")


class TestTerminalCases:
    def test_not(self, bdd):
        assert bdd.not_(bdd.true) == bdd.false
        assert bdd.not_(bdd.false) == bdd.true
        a = bdd.var("a")
        assert bdd.not_(bdd.not_(a)) == a

    def test_and(self, bdd):
        a, b = lits(bdd)
        assert bdd.and_(a, bdd.false) == bdd.false
        assert bdd.and_(bdd.false, a) == bdd.false
        assert bdd.and_(a, bdd.true) == a
        assert bdd.and_(bdd.true, a) == a
        assert bdd.and_(a, a) == a

    def test_or(self, bdd):
        a, b = lits(bdd)
        assert bdd.or_(a, bdd.true) == bdd.true
        assert bdd.or_(a, bdd.false) == a
        assert bdd.or_(a, a) == a

    def test_xor(self, bdd):
        a, b = lits(bdd)
        assert bdd.xor(a, a) == bdd.false
        assert bdd.xor(a, bdd.false) == a
        assert bdd.xor(a, bdd.true) == bdd.not_(a)

    def test_ite(self, bdd):
        a, b = lits(bdd)
        c = bdd.var("c")
        assert bdd.ite(bdd.true, a, b) == a
        assert bdd.ite(bdd.false, a, b) == b
        assert bdd.ite(a, b, b) == b
        assert bdd.ite(a, bdd.true, bdd.false) == a
        assert bdd.ite(a, bdd.false, bdd.true) == bdd.not_(a)
        assert bdd.ite(a, b, c) == bdd.or_(
            bdd.and_(a, b), bdd.and_(bdd.not_(a), c)
        )


class TestIdentities:
    def test_de_morgan(self, bdd):
        a, b = lits(bdd)
        assert bdd.not_(bdd.and_(a, b)) == bdd.or_(
            bdd.not_(a), bdd.not_(b)
        )

    def test_xor_via_and_or(self, bdd):
        a, b = lits(bdd)
        expected = bdd.or_(
            bdd.and_(a, bdd.not_(b)), bdd.and_(bdd.not_(a), b)
        )
        assert bdd.xor(a, b) == expected

    def test_equiv_is_not_xor(self, bdd):
        a, b = lits(bdd)
        assert bdd.equiv(a, b) == bdd.not_(bdd.xor(a, b))

    def test_implies(self, bdd):
        a, b = lits(bdd)
        assert bdd.implies(a, b) == bdd.or_(bdd.not_(a), b)
        assert bdd.implies(a, a) == bdd.true

    def test_diff(self, bdd):
        a, b = lits(bdd)
        assert bdd.diff(a, b) == bdd.and_(a, bdd.not_(b))

    def test_commutativity_shares_cache_entries(self, bdd):
        a, b = lits(bdd)
        f = bdd.and_(a, b)
        stats = bdd.cache_stats()["and"]
        before_inserts = stats["inserts"]
        hits_before = stats["hits"]
        g = bdd.and_(b, a)
        assert f == g
        stats = bdd.cache_stats()["and"]
        # Operand normalization: the swapped call hits, inserting nothing.
        assert stats["inserts"] == before_inserts
        assert stats["hits"] > hits_before

    def test_distribution(self, bdd):
        a, b = lits(bdd)
        c = bdd.var("c")
        left = bdd.and_(a, bdd.or_(b, c))
        right = bdd.or_(bdd.and_(a, b), bdd.and_(a, c))
        assert left == right


class TestRandomizedAgainstTruthTables:
    NVARS = 5

    def test_many_random_expressions(self):
        rng = random.Random(42)
        for _ in range(150):
            bdd = BDD(["x%d" % i for i in range(self.NVARS)])
            expr = random_expr(rng, self.NVARS, 4)
            node = build_expr(bdd, expr)
            assert truth_table(bdd, node, self.NVARS) == expr_table(
                expr, self.NVARS
            )

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_hypothesis_expressions(self, data):
        seed = data.draw(st.integers(0, 2**32 - 1))
        rng = random.Random(seed)
        bdd = BDD(["x%d" % i for i in range(self.NVARS)])
        expr = random_expr(rng, self.NVARS, data.draw(st.integers(0, 5)))
        node = build_expr(bdd, expr)
        assert truth_table(bdd, node, self.NVARS) == expr_table(
            expr, self.NVARS
        )

    def test_canonicity_equal_tables_equal_nodes(self):
        rng = random.Random(7)
        bdd = BDD(["x%d" % i for i in range(4)])
        seen = {}
        for _ in range(80):
            expr = random_expr(rng, 4, 3)
            node = build_expr(bdd, expr)
            table = truth_table(bdd, node, 4)
            if table in seen:
                assert seen[table] == node
            seen[table] = node

"""Dynamic reordering tests: swaps, targeted reorder, sifting.

The key contract: reorders rewrite interacting nodes in place, so node
handles held across a reorder keep denoting the same Boolean function.
"""

import itertools
import random

import pytest

from repro.bdd import BDD
from repro.errors import BDDError

from ..conftest import build_expr, random_expr

NVARS = 6


def table(bdd, node):
    return tuple(
        bdd.evaluate(node, dict(enumerate(env)))
        for env in itertools.product([False, True], repeat=NVARS)
    )


@pytest.fixture
def bdd():
    return BDD(["x%d" % i for i in range(NVARS)])


class TestSwapAdjacent:
    def test_swap_updates_order(self, bdd):
        bdd.swap_levels(0)
        assert bdd.order_names[:2] == ["x1", "x0"]
        assert bdd.level_of("x0") == 1

    def test_swap_preserves_functions(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.or_(bdd.var(1), bdd.var(2)))
        bdd.incref(f)
        before = table(bdd, f)
        bdd.swap_levels(0)
        assert table(bdd, f) == before
        bdd.check_invariants()

    def test_swap_is_involution(self, bdd):
        f = bdd.xor(bdd.var(1), bdd.and_(bdd.var(2), bdd.var(0)))
        bdd.incref(f)
        before = table(bdd, f)
        bdd.swap_levels(1)
        bdd.swap_levels(1)
        assert bdd.order_names == ["x%d" % i for i in range(NVARS)]
        assert table(bdd, f) == before

    def test_swap_out_of_range(self, bdd):
        with pytest.raises(BDDError):
            bdd.swap_levels(NVARS - 1)
        with pytest.raises(BDDError):
            bdd.swap_levels(-1)

    def test_random_swap_sequences(self):
        rng = random.Random(77)
        for _ in range(25):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            f = build_expr(bdd, random_expr(rng, NVARS, 4))
            bdd.incref(f)
            before = table(bdd, f)
            for _swap in range(12):
                bdd.swap_levels(rng.randrange(NVARS - 1))
            bdd.check_invariants()
            assert table(bdd, f) == before


class TestReorderTo:
    def test_reorder_to_target(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.xor(bdd.var(3), bdd.var(5)))
        bdd.incref(f)
        before = table(bdd, f)
        target = [5, 4, 3, 2, 1, 0]
        bdd.reorder_to(target)
        assert bdd.order == target
        assert table(bdd, f) == before
        bdd.check_invariants()

    def test_reorder_names(self, bdd):
        bdd.reorder_to(["x2", "x0", "x1", "x3", "x4", "x5"])
        assert bdd.order_names[:3] == ["x2", "x0", "x1"]

    def test_reorder_requires_permutation(self, bdd):
        with pytest.raises(BDDError):
            bdd.reorder_to([0, 0, 1, 2, 3, 4])

    def test_order_affects_size(self):
        # The classic (a1<->b1)(a2<->b2)(a3<->b3): interleaved order is
        # linear, separated order is exponential.
        names = ["a1", "b1", "a2", "b2", "a3", "b3"]
        bdd = BDD(names)
        f = bdd.true
        for i in (1, 2, 3):
            f = bdd.and_(
                f, bdd.equiv(bdd.var("a%d" % i), bdd.var("b%d" % i))
            )
        bdd.incref(f)
        interleaved = bdd.dag_size(f)
        bdd.reorder_to(["a1", "a2", "a3", "b1", "b2", "b3"])
        separated = bdd.dag_size(f)
        assert separated > interleaved


class TestSifting:
    def test_sift_preserves_semantics(self):
        rng = random.Random(99)
        for _ in range(10):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            f = build_expr(bdd, random_expr(rng, NVARS, 4))
            g = build_expr(bdd, random_expr(rng, NVARS, 4))
            bdd.incref(f)
            bdd.incref(g)
            before_f, before_g = table(bdd, f), table(bdd, g)
            bdd.sift()
            bdd.check_invariants()
            assert table(bdd, f) == before_f
            assert table(bdd, g) == before_g

    def test_sift_finds_good_order_for_coupled_pairs(self):
        names = ["a1", "a2", "a3", "b1", "b2", "b3"]
        bdd = BDD(names)  # deliberately bad: pairs separated
        f = bdd.true
        for i in (1, 2, 3):
            f = bdd.and_(
                f, bdd.equiv(bdd.var("a%d" % i), bdd.var("b%d" % i))
            )
        bdd.incref(f)
        bad = bdd.dag_size(f)
        bdd.sift()
        good = bdd.dag_size(f)
        assert good < bad

    def test_sift_respects_max_vars(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(5))
        bdd.incref(f)
        bdd.sift(max_vars=1)
        bdd.check_invariants()

    def test_sift_trivial_manager(self):
        bdd = BDD(["only"])
        assert bdd.sift() == bdd.num_nodes

"""Quantification tests: EXISTS, FORALL and the fused relational product."""

import itertools
import random

import pytest

from repro.bdd import BDD

from ..conftest import build_expr, eval_expr, random_expr

NVARS = 5


@pytest.fixture
def bdd():
    return BDD(["x%d" % i for i in range(NVARS)])


def brute_quantify(expr, variables, mode, nvars=NVARS):
    """Truth table of the quantified expression, by expansion."""
    rows = []
    combine = any if mode == "exists" else all
    for env in itertools.product([False, True], repeat=nvars):
        env = dict(enumerate(env))
        values = []
        for combo in itertools.product([False, True], repeat=len(variables)):
            env2 = dict(env)
            env2.update(zip(variables, combo))
            values.append(eval_expr(expr, env2))
        rows.append(combine(values))
    return tuple(rows)


def table(bdd, node, nvars=NVARS):
    return tuple(
        bdd.evaluate(node, dict(enumerate(env)))
        for env in itertools.product([False, True], repeat=nvars)
    )


class TestExistsForall:
    def test_exists_simple(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(1))
        assert bdd.exists([0], f) == bdd.var(1)
        assert bdd.exists([0, 1], f) == bdd.true

    def test_forall_simple(self, bdd):
        f = bdd.or_(bdd.var(0), bdd.var(1))
        assert bdd.forall([0], f) == bdd.var(1)
        assert bdd.forall([0, 1], f) == bdd.false

    def test_quantify_missing_var_is_noop(self, bdd):
        f = bdd.var(1)
        assert bdd.exists([0], f) == f
        assert bdd.forall([3], f) == f

    def test_empty_variable_set(self, bdd):
        f = bdd.xor(bdd.var(0), bdd.var(2))
        assert bdd.exists([], f) == f
        assert bdd.forall([], f) == f

    def test_terminals(self, bdd):
        assert bdd.exists([0], bdd.true) == bdd.true
        assert bdd.exists([0], bdd.false) == bdd.false
        assert bdd.forall([0], bdd.true) == bdd.true

    def test_names_accepted(self, bdd):
        f = bdd.and_(bdd.var("x0"), bdd.var("x1"))
        assert bdd.exists(["x0"], f) == bdd.var("x1")

    def test_duality(self, bdd):
        rng = random.Random(3)
        for _ in range(30):
            expr = random_expr(rng, NVARS, 3)
            f = build_expr(bdd, expr)
            vs = rng.sample(range(NVARS), 2)
            assert bdd.forall(vs, f) == bdd.not_(
                bdd.exists(vs, bdd.not_(f))
            )

    def test_randomized_against_expansion(self):
        rng = random.Random(11)
        for _ in range(40):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            expr = random_expr(rng, NVARS, 4)
            f = build_expr(bdd, expr)
            variables = rng.sample(range(NVARS), rng.randint(1, 3))
            assert table(bdd, bdd.exists(variables, f)) == brute_quantify(
                expr, variables, "exists"
            )
            assert table(bdd, bdd.forall(variables, f)) == brute_quantify(
                expr, variables, "forall"
            )


class TestAndExists:
    def test_matches_unfused(self):
        rng = random.Random(23)
        for _ in range(60):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            f = build_expr(bdd, random_expr(rng, NVARS, 3))
            g = build_expr(bdd, random_expr(rng, NVARS, 3))
            variables = rng.sample(range(NVARS), rng.randint(0, 3))
            fused = bdd.and_exists(f, g, variables)
            reference = bdd.exists(variables, bdd.and_(f, g))
            assert fused == reference

    def test_terminal_shortcuts(self, bdd):
        f = bdd.var(0)
        assert bdd.and_exists(f, bdd.false, [0]) == bdd.false
        assert bdd.and_exists(bdd.true, bdd.true, [0]) == bdd.true
        assert bdd.and_exists(f, bdd.true, [0]) == bdd.true
        assert bdd.and_exists(f, f, [0]) == bdd.true

    def test_relational_product_shape(self, bdd):
        # image of {x0=1} under relation x1' == x0 (x1 plays next-state)
        relation = bdd.equiv(bdd.var(1), bdd.var(0))
        from_set = bdd.var(0)
        image = bdd.and_exists(from_set, relation, [0])
        assert image == bdd.var(1)

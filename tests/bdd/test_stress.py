"""Stress and failure-injection tests for the BDD manager.

Long random operation sequences with interleaved garbage collections
and reorders must preserve function semantics and internal invariants;
a node-limit abort must leave the manager usable.
"""

import itertools
import random

import pytest

from repro.bdd import BDD
from repro.errors import ResourceLimitError

from ..conftest import build_expr, random_expr

NVARS = 6


def table(bdd, node):
    return tuple(
        bdd.evaluate(node, dict(enumerate(env)))
        for env in itertools.product([False, True], repeat=NVARS)
    )


class TestInterleavedLifecycle:
    def test_ops_gc_reorder_swaps(self):
        rng = random.Random(2024)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        pinned = {}  # node -> truth table
        for step in range(300):
            action = rng.random()
            if action < 0.5 or not pinned:
                node = build_expr(bdd, random_expr(rng, NVARS, 3))
                bdd.incref(node)
                pinned[node] = table(bdd, node)
            elif action < 0.65:
                victim = rng.choice(list(pinned))
                bdd.decref(victim)
                del pinned[victim]
                bdd.collect_garbage()
            elif action < 0.8:
                bdd.collect_garbage()
            elif action < 0.95:
                bdd.swap_levels(rng.randrange(NVARS - 1))
            else:
                order = list(range(NVARS))
                rng.shuffle(order)
                bdd.reorder_to(order)
            if step % 37 == 0:
                bdd.check_invariants()
                for node, expected in pinned.items():
                    assert table(bdd, node) == expected
        bdd.check_invariants()
        for node, expected in pinned.items():
            assert table(bdd, node) == expected

    def test_gc_then_rebuild_is_canonical(self):
        rng = random.Random(7)
        bdd = BDD(["x%d" % i for i in range(NVARS)])
        expr = random_expr(rng, NVARS, 4)
        first = build_expr(bdd, expr)
        expected = table(bdd, first)
        bdd.collect_garbage()  # first is swept
        second = build_expr(bdd, expr)
        assert table(bdd, second) == expected

    def test_maybe_collect_during_heavy_load(self):
        bdd = BDD(["x%d" % i for i in range(8)])
        bdd.gc_threshold = 500
        rng = random.Random(5)
        keep = build_expr(bdd, random_expr(rng, 8, 4))
        bdd.incref(keep)
        reference = tuple(
            bdd.evaluate(keep, dict(enumerate(env)))
            for env in itertools.product([False, True], repeat=8)
        )
        for _ in range(30):
            build_expr(bdd, random_expr(rng, 8, 4))
            bdd.maybe_collect()
        got = tuple(
            bdd.evaluate(keep, dict(enumerate(env)))
            for env in itertools.product([False, True], repeat=8)
        )
        assert got == reference


class TestNodeLimit:
    def test_limit_aborts_blowup(self):
        bdd = BDD(["x%d" % i for i in range(40)])
        bdd.node_limit = 2_000
        with pytest.raises(ResourceLimitError) as info:
            # multiplier-style function: exponential without luck
            f = bdd.false
            rng = random.Random(1)
            for _ in range(200):
                cube = bdd.cube(
                    {v: rng.random() < 0.5 for v in rng.sample(range(40), 12)}
                )
                f = bdd.or_(f, cube)
        assert info.value.kind == "memory"

    def test_manager_usable_after_abort(self):
        bdd = BDD(["x%d" % i for i in range(30)])
        keep = bdd.and_(bdd.var(0), bdd.var(1))
        bdd.incref(keep)
        bdd.node_limit = bdd.num_nodes + 50
        rng = random.Random(3)
        with pytest.raises(ResourceLimitError):
            f = bdd.true
            for _ in range(500):
                f = bdd.xor(
                    f, bdd.cube({v: True for v in rng.sample(range(30), 8)})
                )
        # recover: lift the limit, GC, and keep working
        bdd.node_limit = None
        bdd.collect_garbage()
        bdd.check_invariants()
        assert bdd.evaluate(keep, {0: True, 1: True})
        g = bdd.or_(keep, bdd.var(2))
        assert bdd.evaluate(g, {0: False, 1: False, 2: True})

    def test_peak_statistics_survive_abort(self):
        bdd = BDD(["x%d" % i for i in range(20)])
        bdd.node_limit = 500
        try:
            f = bdd.false
            rng = random.Random(9)
            for _ in range(100):
                f = bdd.or_(
                    f,
                    bdd.cube(
                        {v: rng.random() < 0.5 for v in rng.sample(range(20), 8)}
                    ),
                )
        except ResourceLimitError:
            pass
        assert bdd.peak_nodes >= 500

"""Composition and renaming tests, including simultaneity semantics."""

import itertools
import random

import pytest

from repro.bdd import BDD

from ..conftest import build_expr, eval_expr, random_expr

NVARS = 5


@pytest.fixture
def bdd():
    return BDD(["x%d" % i for i in range(NVARS)])


def table(bdd, node):
    return tuple(
        bdd.evaluate(node, dict(enumerate(env)))
        for env in itertools.product([False, True], repeat=NVARS)
    )


class TestCompose:
    def test_substitute_constant(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(1))
        assert bdd.compose(f, 0, bdd.true) == bdd.var(1)
        assert bdd.compose(f, 0, bdd.false) == bdd.false

    def test_substitute_var_above(self, bdd):
        # Substituting a function of a *higher* variable must still work
        # (the result's top variable rises above f's).
        f = bdd.var(3)
        g = bdd.var(0)
        assert bdd.compose(f, 3, g) == g

    def test_missing_var_is_noop(self, bdd):
        f = bdd.var(2)
        assert bdd.compose(f, 0, bdd.var(4)) == f

    def test_randomized(self):
        rng = random.Random(5)
        for _ in range(40):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            fe = random_expr(rng, NVARS, 3)
            ge = random_expr(rng, NVARS, 3)
            var = rng.randrange(NVARS)
            f = build_expr(bdd, fe)
            g = build_expr(bdd, ge)
            composed = bdd.compose(f, var, g)
            for env in itertools.product([False, True], repeat=NVARS):
                env = dict(enumerate(env))
                env2 = dict(env)
                env2[var] = eval_expr(ge, env)
                assert bdd.evaluate(composed, env) == eval_expr(fe, env2)


class TestVectorCompose:
    def test_simultaneous_not_sequential(self, bdd):
        # f = x0 XOR x1, swap x0 and x1 simultaneously: unchanged.
        f = bdd.xor(bdd.var(0), bdd.var(1))
        swapped = bdd.vector_compose(f, {0: bdd.var(1), 1: bdd.var(0)})
        assert swapped == f
        # But mapping x0 -> x1 while x1 -> NOT x1 must use the *original*
        # x1 in both substitutions.
        g = bdd.and_(bdd.var(0), bdd.var(1))
        mapped = bdd.vector_compose(
            g, {0: bdd.var(1), 1: bdd.not_(bdd.var(1))}
        )
        assert mapped == bdd.false  # x1 AND NOT x1

    def test_empty_mapping(self, bdd):
        f = bdd.var(2)
        assert bdd.vector_compose(f, {}) == f

    def test_randomized(self):
        rng = random.Random(17)
        for _ in range(40):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            fe = random_expr(rng, NVARS, 3)
            subs = {
                v: random_expr(rng, NVARS, 2)
                for v in rng.sample(range(NVARS), rng.randint(1, 3))
            }
            f = build_expr(bdd, fe)
            mapping = {v: build_expr(bdd, e) for v, e in subs.items()}
            result = bdd.vector_compose(f, mapping)
            for env in itertools.product([False, True], repeat=NVARS):
                env = dict(enumerate(env))
                env2 = dict(env)
                for v, e in subs.items():
                    env2[v] = eval_expr(e, env)
                assert bdd.evaluate(result, env) == eval_expr(fe, env2)


class TestRename:
    def test_monotone_fast_path(self, bdd):
        # x0 -> x1 keeps relative order when x0's support slot moves down.
        f = bdd.and_(bdd.var(0), bdd.var(3))
        renamed = bdd.rename(f, {0: 1})
        assert renamed == bdd.and_(bdd.var(1), bdd.var(3))

    def test_swap_two_vars(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.not_(bdd.var(1)))
        swapped = bdd.rename(f, {0: 1, 1: 0})
        assert swapped == bdd.and_(bdd.var(1), bdd.not_(bdd.var(0)))

    def test_identity_rename(self, bdd):
        f = bdd.xor(bdd.var(0), bdd.var(1))
        assert bdd.rename(f, {0: 0, 1: 1}) == f
        assert bdd.rename(f, {}) == f

    def test_rename_outside_support_ignored(self, bdd):
        f = bdd.var(2)
        assert bdd.rename(f, {0: 4}) == f

    def test_collision_with_untouched_support(self, bdd):
        # Renaming x0 onto x1 while x1 stays: x0 AND x1 becomes x1.
        f = bdd.and_(bdd.var(0), bdd.var(1))
        assert bdd.rename(f, {0: 1}) == bdd.var(1)

    def test_randomized_permutations(self):
        rng = random.Random(29)
        for _ in range(30):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            fe = random_expr(rng, NVARS, 3)
            f = build_expr(bdd, fe)
            perm = list(range(NVARS))
            rng.shuffle(perm)
            mapping = {i: perm[i] for i in range(NVARS)}
            renamed = bdd.rename(f, mapping)
            for env in itertools.product([False, True], repeat=NVARS):
                env = dict(enumerate(env))
                pre = {i: env[perm[i]] for i in range(NVARS)}
                assert bdd.evaluate(renamed, env) == eval_expr(fe, pre)

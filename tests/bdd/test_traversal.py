"""Traversal tests: support, sizes, evaluation, SAT counting, models."""

import itertools
import random

import pytest

from repro.bdd import BDD
from repro.errors import BDDError

from ..conftest import build_expr, expr_table, random_expr

NVARS = 5


@pytest.fixture
def bdd():
    return BDD(["x%d" % i for i in range(NVARS)])


class TestSupport:
    def test_support_of_terminal(self, bdd):
        assert bdd.support(bdd.true) == []
        assert bdd.support(bdd.false) == []

    def test_support_sorted_by_level(self, bdd):
        f = bdd.and_(bdd.var(3), bdd.var(1))
        assert bdd.support(f) == [1, 3]
        assert bdd.support_names(f) == ["x1", "x3"]

    def test_support_misses_cancelled_var(self, bdd):
        # (x0 AND x1) OR (NOT x0 AND x1) == x1: x0 not in support.
        f = bdd.or_(
            bdd.and_(bdd.var(0), bdd.var(1)),
            bdd.and_(bdd.not_(bdd.var(0)), bdd.var(1)),
        )
        assert bdd.support(f) == [1]


class TestSizes:
    def test_dag_size_terminal(self, bdd):
        assert bdd.dag_size(bdd.true) == 1
        assert bdd.dag_size(bdd.var(0)) == 3  # node + two terminals

    def test_shared_size_counts_once(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(1))
        g = bdd.or_(f, bdd.var(2))
        shared = bdd.shared_size([f, g])
        assert shared <= bdd.dag_size(f) + bdd.dag_size(g)
        assert shared >= bdd.dag_size(g)

    def test_shared_size_of_identical_roots(self, bdd):
        f = bdd.xor(bdd.var(0), bdd.var(1))
        assert bdd.shared_size([f, f]) == bdd.dag_size(f)


class TestEvaluate:
    def test_partial_assignment_on_path(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(1))
        # x0=False decides the function without consulting x1.
        assert bdd.evaluate(f, {0: False}) is False

    def test_missing_variable_raises(self, bdd):
        f = bdd.var(2)
        with pytest.raises(BDDError):
            bdd.evaluate(f, {})

    def test_names_and_indices(self, bdd):
        f = bdd.var("x1")
        assert bdd.evaluate(f, {"x1": True}) is True
        assert bdd.evaluate(f, {1: True}) is True


class TestSatCount:
    def test_constants(self, bdd):
        assert bdd.sat_count(bdd.false) == 0
        assert bdd.sat_count(bdd.true) == 2**NVARS

    def test_literal(self, bdd):
        assert bdd.sat_count(bdd.var(0)) == 2 ** (NVARS - 1)

    def test_over_subset(self, bdd):
        f = bdd.and_(bdd.var(1), bdd.var(3))
        assert bdd.sat_count(f, [1, 3]) == 1
        assert bdd.sat_count(f, [1, 3, 4]) == 2

    def test_rejects_missing_support(self, bdd):
        f = bdd.var(2)
        with pytest.raises(BDDError):
            bdd.sat_count(f, [0, 1])

    def test_randomized(self):
        rng = random.Random(13)
        for _ in range(40):
            bdd = BDD(["x%d" % i for i in range(NVARS)])
            expr = random_expr(rng, NVARS, 4)
            node = build_expr(bdd, expr)
            expected = sum(expr_table(expr, NVARS))
            assert bdd.sat_count(node) == expected


class TestModels:
    def test_pick_model_none_for_false(self, bdd):
        assert bdd.pick_model(bdd.false) is None

    def test_pick_model_satisfies(self, bdd):
        rng = random.Random(19)
        for _ in range(30):
            f = build_expr(bdd, random_expr(rng, NVARS, 3))
            model = bdd.pick_model(f)
            if f == bdd.false:
                assert model is None
                continue
            env = {name: value for name, value in model.items()}
            full = {("x%d" % i): env.get("x%d" % i, False) for i in range(NVARS)}
            assert bdd.evaluate(f, full)

    def test_pick_model_includes_care_vars(self, bdd):
        f = bdd.var(0)
        model = bdd.pick_model(f, care_vars=[2, 4])
        assert "x2" in model and "x4" in model

    def test_iter_models_complete(self, bdd):
        f = bdd.xor(bdd.var(0), bdd.var(2))
        models = list(bdd.iter_models(f))
        assert len(models) == 2  # over support {x0, x2}
        for model in models:
            assert model["x0"] != model["x2"]

    def test_iter_models_with_care_vars(self, bdd):
        f = bdd.var(0)
        models = list(bdd.iter_models(f, care_vars=[1]))
        assert len(models) == 2
        assert {m["x1"] for m in models} == {False, True}

    def test_iter_models_count_matches_sat_count(self, bdd):
        rng = random.Random(37)
        for _ in range(15):
            f = build_expr(bdd, random_expr(rng, NVARS, 3))
            models = list(bdd.iter_models(f))
            over = bdd.support(f)
            assert len(models) == bdd.sat_count(f, over)


class TestDot:
    def test_dot_contains_nodes_and_edges(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(1))
        dot = bdd.to_dot(f)
        assert dot.startswith("digraph")
        assert "x0" in dot and "x1" in dot
        assert "style=dashed" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_terminal_only(self, bdd):
        dot = bdd.to_dot(bdd.true)
        assert "shape=box" in dot

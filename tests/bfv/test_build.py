"""Conversion tests: characteristic function <-> canonical BFV.

Includes the paper's Table 1 worked example and exhaustive round-trips.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.bfv import BFV, constraints, from_characteristic, to_characteristic
from repro.errors import BFVError

from ..conftest import all_points, all_subsets, chi_of


@pytest.fixture
def bdd():
    return BDD(["v0", "v1", "v2"])


VARS3 = (0, 1, 2)


class TestPaperTable1:
    """The worked example of Section 2: S = {000, 001, 010, 011, 100, 101}."""

    POINTS = [p for p in all_points(3) if not (p[0] and p[1])]

    def test_characteristic_function(self, bdd):
        chi = chi_of(bdd, VARS3, self.POINTS)
        # chi == NOT (v0 AND v1)
        assert chi == bdd.not_(bdd.and_(bdd.var(0), bdd.var(1)))

    def test_canonical_vector_matches_paper(self, bdd):
        chi = chi_of(bdd, VARS3, self.POINTS)
        vec = from_characteristic(bdd, VARS3, chi)
        v0, v1, v2 = bdd.var(0), bdd.var(1), bdd.var(2)
        # F = (v1, NOT v1 AND v2, v3) in the paper's 1-based numbering.
        assert vec.components == (
            v0,
            bdd.and_(bdd.not_(v0), v1),
            v2,
        )

    def test_selection_table(self, bdd):
        # Table 1's F column: every choice row maps to the listed member.
        chi = chi_of(bdd, VARS3, self.POINTS)
        vec = from_characteristic(bdd, VARS3, chi)
        expected = {
            (False, False, False): (False, False, False),
            (False, False, True): (False, False, True),
            (False, True, False): (False, True, False),
            (False, True, True): (False, True, True),
            (True, False, False): (True, False, False),
            (True, False, True): (True, False, True),
            (True, True, False): (True, False, False),
            (True, True, True): (True, False, True),
        }
        for choices, member in expected.items():
            assert vec.select(choices) == member


class TestRoundTrips:
    def test_exhaustive_width3(self, bdd):
        for subset in all_subsets(3):
            chi = chi_of(bdd, VARS3, subset)
            vec = from_characteristic(bdd, VARS3, chi)
            vec.check_structure()
            assert to_characteristic(vec) == chi
            assert set(vec.enumerate()) == subset
            assert vec.count() == len(subset)

    def test_empty_set(self, bdd):
        vec = from_characteristic(bdd, VARS3, bdd.false)
        assert vec.is_empty
        assert to_characteristic(vec) == bdd.false

    def test_full_set(self, bdd):
        vec = from_characteristic(bdd, VARS3, bdd.true)
        assert vec.components == (bdd.var(0), bdd.var(1), bdd.var(2))

    def test_rejects_foreign_support(self, bdd):
        bdd.add_var("w")
        with pytest.raises(BFVError):
            from_characteristic(bdd, VARS3, bdd.var("w"))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(4, 6))
    def test_random_wider_sets(self, seed, width):
        rng = random.Random(seed)
        bdd = BDD(["v%d" % i for i in range(width)])
        variables = tuple(range(width))
        points = {
            tuple(rng.random() < 0.5 for _ in range(width))
            for _ in range(rng.randint(1, 12))
        }
        chi = chi_of(bdd, variables, points)
        vec = from_characteristic(bdd, variables, chi)
        vec.check_structure()
        assert to_characteristic(vec) == chi
        assert set(vec.enumerate()) == points


class TestChoiceVarsNotFirst:
    def test_choice_vars_interleaved_with_params(self):
        # Choice variables need not be contiguous or first in the order.
        bdd = BDD(["p", "v0", "q", "v1", "v2"])
        variables = (1, 3, 4)
        points = [(True, False, True), (False, False, False)]
        chi = chi_of(bdd, variables, points)
        vec = from_characteristic(bdd, variables, chi)
        assert set(vec.enumerate()) == set(points)


class TestConstraintsView:
    def test_conjunction_equals_chi(self, bdd):
        for subset in list(all_subsets(3))[::17]:
            chi = chi_of(bdd, VARS3, subset)
            vec = from_characteristic(bdd, VARS3, chi)
            parts = constraints(vec)
            assert bdd.conjoin(parts) == chi

    def test_triangular_support(self, bdd):
        chi = chi_of(bdd, VARS3, [(True, False, True), (False, True, True)])
        vec = from_characteristic(bdd, VARS3, chi)
        for i, part in enumerate(constraints(vec)):
            assert set(bdd.support(part)) <= set(VARS3[: i + 1])

"""Conjunctive-decomposition tests (paper Sec 2.7).

Checks the exact bijection with canonical BFVs, agreement with
McMillan's constrain-based construction when the component order equals
the BDD order, and the set operations on the constraint view.
"""

import random

import pytest

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic
from repro.bfv.conjunctive import (
    ConjunctiveDecomposition,
    mcmillan_from_characteristic,
)
from repro.errors import BFVError

from ..conftest import all_subsets, chi_of

VARS3 = (0, 1, 2)


@pytest.fixture
def bdd():
    return BDD(["v0", "v1", "v2"])


def make_bfv(bdd, subset):
    return from_characteristic(bdd, VARS3, chi_of(bdd, VARS3, subset))


def make_cd(bdd, subset):
    return ConjunctiveDecomposition.from_bfv(make_bfv(bdd, subset))


class TestBijection:
    def test_roundtrip_exhaustive(self, bdd):
        for subset in all_subsets(3):
            vec = make_bfv(bdd, subset)
            cd = ConjunctiveDecomposition.from_bfv(vec)
            assert cd.to_bfv() == vec
            assert cd.to_characteristic() == chi_of(bdd, VARS3, subset)

    def test_empty_roundtrip(self, bdd):
        empty = BFV.empty(bdd, VARS3)
        cd = ConjunctiveDecomposition.from_bfv(empty)
        assert cd.is_empty
        assert cd.to_bfv().is_empty
        assert cd.to_characteristic() == bdd.false

    def test_constraint_form(self, bdd):
        # c_i = (v_i <-> f_i): check on the paper's Table 1 set.
        points = [
            (a, b, c)
            for a in (False, True)
            for b in (False, True)
            for c in (False, True)
            if not (a and b)
        ]
        vec = make_bfv(bdd, frozenset(points))
        cd = ConjunctiveDecomposition.from_bfv(vec)
        for v, f, part in zip(VARS3, vec.components, cd.parts):
            assert part == bdd.equiv(bdd.var(v), f)


class TestMcMillanConstruction:
    def test_matches_bijection_exhaustive(self, bdd):
        # With component order == BDD order, McMillan's constrain-based
        # construction coincides with the BFV constraint view (Sec 2.7).
        for subset in all_subsets(3):
            chi = chi_of(bdd, VARS3, subset)
            assert mcmillan_from_characteristic(
                bdd, VARS3, chi
            ) == ConjunctiveDecomposition.from_characteristic(
                bdd, VARS3, chi
            )

    def test_empty(self, bdd):
        assert mcmillan_from_characteristic(bdd, VARS3, bdd.false).is_empty


class TestStructure:
    def test_triangular_support_enforced(self, bdd):
        with pytest.raises(BFVError):
            ConjunctiveDecomposition(
                bdd, VARS3, [bdd.var(2), bdd.true, bdd.true]
            )

    def test_prefix_satisfiability_enforced(self, bdd):
        # c_0 = v0 AND NOT v0 rules out every prefix.
        with pytest.raises(BFVError):
            ConjunctiveDecomposition(bdd, VARS3, [bdd.false, bdd.true, bdd.true])

    def test_part_count_enforced(self, bdd):
        with pytest.raises(BFVError):
            ConjunctiveDecomposition(bdd, VARS3, [bdd.true])


class TestSetOperations:
    def test_union_sampled(self, bdd):
        rng = random.Random(6)
        subsets = list(all_subsets(3))
        cds = {s: make_cd(bdd, s) for s in subsets}
        for _ in range(250):
            a, b = rng.choice(subsets), rng.choice(subsets)
            assert cds[a].union(cds[b]) == cds[a | b]

    def test_intersect_sampled(self, bdd):
        rng = random.Random(7)
        subsets = list(all_subsets(3))
        cds = {s: make_cd(bdd, s) for s in subsets}
        for _ in range(250):
            a, b = rng.choice(subsets), rng.choice(subsets)
            result = cds[a].intersect(cds[b])
            expected = a & b
            if not expected:
                assert result.is_empty
            else:
                assert result == cds[frozenset(expected)]

    def test_union_with_empty(self, bdd):
        cd = make_cd(bdd, frozenset([(True, True, False)]))
        empty = ConjunctiveDecomposition(bdd, VARS3, None)
        assert cd.union(empty) == cd
        assert empty.union(cd) == cd

    def test_intersect_with_empty(self, bdd):
        cd = make_cd(bdd, frozenset([(True, True, False)]))
        empty = ConjunctiveDecomposition(bdd, VARS3, None)
        assert cd.intersect(empty).is_empty

    def test_is_subset(self, bdd):
        small = make_cd(bdd, frozenset([(False, True, False)]))
        big = make_cd(
            bdd,
            frozenset([(False, True, False), (True, False, True)]),
        )
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_contains_and_count(self, bdd):
        points = frozenset([(False, False, True), (True, True, True)])
        cd = make_cd(bdd, points)
        assert cd.count() == 2
        for point in points:
            assert cd.contains(point)
        assert not cd.contains((True, False, False))
        empty = ConjunctiveDecomposition(bdd, VARS3, None)
        assert empty.count() == 0
        assert not empty.contains((True, False, False))

    def test_mismatched_spaces_rejected(self, bdd):
        cd = make_cd(bdd, frozenset([(True, True, True)]))
        other = BDD(["v0", "v1", "v2"])
        foreign = make_cd(other, frozenset([(True, True, True)]))
        with pytest.raises(BFVError):
            cd.union(foreign)

    def test_shared_size_and_repr(self, bdd):
        cd = make_cd(bdd, frozenset([(True, False, True)]))
        assert cd.shared_size() > 0
        assert "width=3" in repr(cd)
        assert "empty" in repr(ConjunctiveDecomposition(bdd, VARS3, None))

"""Set-intersection tests (paper Sec 2.4), incl. the worked example."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic, intersect, is_subset, union
from repro.errors import BFVError

from ..conftest import all_subsets, chi_of


def make(bdd, variables, subset):
    return from_characteristic(bdd, variables, chi_of(bdd, variables, subset))


class TestPaperExample:
    """Sec 2.4's example: S' = {000,010,011}, S'' = {000,011,101,110}."""

    def test_vectors_match_paper(self):
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        s1 = [(False, False, False), (False, True, False), (False, True, True)]
        s2 = [
            (False, False, False),
            (False, True, True),
            (True, False, True),
            (True, True, False),
        ]
        f = make(bdd, variables, s1)
        g = make(bdd, variables, s2)
        v1, v2, v3 = bdd.var(0), bdd.var(1), bdd.var(2)
        # Paper: F = (0, v2, v2 AND v3) -- in 0-based naming here.
        assert f.components == (bdd.false, v2, bdd.and_(v2, v3))
        # Paper: G = (v1, v2, ...) with a conflict when the second bit
        # is chosen 0 in F (third bit forced 0) vs G.
        result = intersect(f, g)
        expected = {(False, False, False), (False, True, True)}
        assert set(result.enumerate()) == expected

    def test_normalization_removes_conflicts(self):
        # F = (0, v2, 0) vs G = (0, v2, v2 XOR-ish) from the paper text:
        # S = {000, 010} vs S = {000, 011}: intersection {000} — choosing
        # the second bit 1 would give conflicting third-bit values.
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        f = make(bdd, variables, [(False, False, False), (False, True, False)])
        g = make(bdd, variables, [(False, False, False), (False, True, True)])
        result = intersect(f, g)
        assert set(result.enumerate()) == {(False, False, False)}
        result.check_structure()


class TestExhaustiveWidth2:
    def test_all_pairs(self):
        bdd = BDD(["v0", "v1"])
        variables = (0, 1)
        vectors = {s: make(bdd, variables, s) for s in all_subsets(2)}
        for a, fa in vectors.items():
            for b, fb in vectors.items():
                result = intersect(fa, fb)
                expected = a & b
                if not expected:
                    assert result.is_empty, (sorted(a), sorted(b))
                else:
                    assert result == vectors[frozenset(expected)]


class TestSampledWidth3:
    def test_sampled_pairs(self):
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        rng = random.Random(1)
        subsets = list(all_subsets(3))
        vectors = {s: make(bdd, variables, s) for s in subsets}
        for _ in range(400):
            a = rng.choice(subsets)
            b = rng.choice(subsets)
            result = intersect(vectors[a], vectors[b])
            expected = a & b
            if not expected:
                assert result.is_empty
            else:
                assert result == vectors[frozenset(expected)]


class TestAlgebraicProperties:
    @pytest.fixture
    def setup(self):
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        rng = random.Random(4)
        subsets = rng.sample(list(all_subsets(3)), 10)
        return bdd, variables, [make(bdd, variables, s) for s in subsets]

    def test_idempotent(self, setup):
        _, _, vectors = setup
        for vec in vectors:
            assert intersect(vec, vec) == vec

    def test_commutative(self, setup):
        _, _, vectors = setup
        for a in vectors[:5]:
            for b in vectors[5:]:
                assert intersect(a, b) == intersect(b, a)

    def test_empty_annihilates(self, setup):
        bdd, variables, vectors = setup
        empty = BFV.empty(bdd, variables)
        for vec in vectors:
            assert intersect(vec, empty).is_empty
            assert intersect(empty, vec).is_empty

    def test_universe_is_identity(self, setup):
        bdd, variables, vectors = setup
        universe = BFV.universe(bdd, variables)
        for vec in vectors:
            assert intersect(vec, universe) == vec

    def test_absorption_laws(self, setup):
        _, _, vectors = setup
        a, b = vectors[0], vectors[1]
        assert union(a, intersect(a, b)) == a
        assert intersect(a, union(a, b)) == a

    def test_disjoint_singletons(self, setup):
        bdd, variables, _ = setup
        a = BFV.point(bdd, variables, (True, True, True))
        b = BFV.point(bdd, variables, (False, False, False))
        assert intersect(a, b).is_empty

    def test_mismatched_spaces_rejected(self, setup):
        bdd, variables, vectors = setup
        other = BDD(["v0", "v1", "v2"])
        with pytest.raises(BFVError):
            intersect(vectors[0], BFV.universe(other, variables))


class TestSubset:
    def test_is_subset_basic(self):
        bdd = BDD(["v0", "v1"])
        variables = (0, 1)
        small = BFV.point(bdd, variables, (True, False))
        big = make(
            bdd, variables, [(True, False), (False, False), (True, True)]
        )
        assert is_subset(small, big)
        assert not is_subset(big, small)
        assert is_subset(big, big)

    def test_empty_subset_of_everything(self):
        bdd = BDD(["v0", "v1"])
        variables = (0, 1)
        empty = BFV.empty(bdd, variables)
        assert is_subset(empty, BFV.universe(bdd, variables))
        assert is_subset(empty, empty)
        assert not is_subset(BFV.universe(bdd, variables), empty)

    def test_method_form(self):
        bdd = BDD(["v0", "v1"])
        variables = (0, 1)
        a = BFV.point(bdd, variables, (False, True))
        assert a.is_subset(BFV.universe(bdd, variables))


class TestHypothesisWidth5:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_intersection_matches_set_semantics(self, seed):
        rng = random.Random(seed)
        width = rng.randint(3, 5)
        bdd = BDD(["v%d" % i for i in range(width)])
        variables = tuple(range(width))
        universe_sample = [
            tuple(rng.random() < 0.5 for _ in range(width))
            for _ in range(12)
        ]
        a = set(universe_sample[: rng.randint(1, 10)])
        b = set(rng.sample(universe_sample, rng.randint(1, 10)))
        fa = make(bdd, variables, a)
        fb = make(bdd, variables, b)
        result = intersect(fa, fb)
        expected = a & b
        if not expected:
            assert result.is_empty
        else:
            assert set(result.enumerate()) == expected
            assert result == make(bdd, variables, expected)

"""Hypothesis property tests: the lattice laws of BFV set algebra.

The canonical BFV representation with union/intersection must form a
bounded distributive lattice isomorphic to the subset lattice; these
properties are checked on randomly generated canonical vectors of
random widths, together with cardinality laws and representation
invariants (structure, canonicity round-trips) after every operation.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic, intersect, union
from repro.bfv.conjunctive import ConjunctiveDecomposition

from ..conftest import chi_of


def make_family(seed):
    """Three random canonical vectors on a shared manager."""
    rng = random.Random(seed)
    width = rng.randint(2, 6)
    bdd = BDD(["v%d" % i for i in range(width)])
    variables = tuple(range(width))
    vectors = []
    sets = []
    for _ in range(3):
        points = {
            tuple(rng.random() < 0.5 for _ in range(width))
            for _ in range(rng.randint(0, 10))
        }
        sets.append(points)
        if points:
            vectors.append(
                from_characteristic(
                    bdd, variables, chi_of(bdd, variables, points)
                )
            )
        else:
            vectors.append(BFV.empty(bdd, variables))
    return bdd, variables, vectors, sets


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_distributive_lattice_laws(seed):
    _, _, (a, b, c), _ = make_family(seed)
    # commutativity
    assert union(a, b) == union(b, a)
    assert intersect(a, b) == intersect(b, a)
    # associativity
    assert union(union(a, b), c) == union(a, union(b, c))
    assert intersect(intersect(a, b), c) == intersect(a, intersect(b, c))
    # absorption
    if not a.is_empty or not b.is_empty:
        assert union(a, intersect(a, b)) == a
        assert intersect(a, union(a, b)) == a
    # distributivity
    assert intersect(a, union(b, c)) == union(
        intersect(a, b), intersect(a, c)
    )
    assert union(a, intersect(b, c)) == intersect(
        union(a, b), union(a, c)
    )


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_cardinality_laws(seed):
    _, _, (a, b, _), _ = make_family(seed)
    # inclusion-exclusion
    assert (
        union(a, b).count() + intersect(a, b).count()
        == a.count() + b.count()
    )


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_results_stay_canonical(seed):
    bdd, variables, (a, b, _), _ = make_family(seed)
    for result in (union(a, b), intersect(a, b)):
        if result.is_empty:
            continue
        result.check_structure()
        rebuilt = from_characteristic(
            bdd, variables, result.to_characteristic()
        )
        assert rebuilt == result


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_subset_is_a_partial_order(seed):
    _, _, (a, b, c), _ = make_family(seed)
    # reflexivity
    assert a.is_subset(a)
    # the union is an upper bound, the intersection a lower bound
    assert a.is_subset(union(a, b))
    assert intersect(a, b).is_subset(a)
    # antisymmetry (canonical equality decides it)
    if a.is_subset(b) and b.is_subset(a):
        assert a == b
    # transitivity along the chain meet(a,b) <= a <= join(a,c)
    assert intersect(a, b).is_subset(union(a, c))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_membership_consistency(seed):
    rng = random.Random(seed ^ 0xABCDEF)
    _, variables, (a, b, _), _ = make_family(seed)
    width = len(variables)
    u = union(a, b)
    x = intersect(a, b)
    for _ in range(10):
        point = tuple(rng.random() < 0.5 for _ in range(width))
        assert u.contains(point) == (a.contains(point) or b.contains(point))
        assert x.contains(point) == (a.contains(point) and b.contains(point))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_conjunctive_view_is_homomorphic(seed):
    _, _, (a, b, _), _ = make_family(seed)
    ca = ConjunctiveDecomposition.from_bfv(a)
    cb = ConjunctiveDecomposition.from_bfv(b)
    assert ca.union(cb) == ConjunctiveDecomposition.from_bfv(union(a, b))
    assert ca.intersect(cb) == ConjunctiveDecomposition.from_bfv(
        intersect(a, b)
    )


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_smooth_consensus_galois(seed):
    rng = random.Random(seed ^ 0x55AA)
    _, variables, (a, _, _), _ = make_family(seed)
    if a.is_empty:
        return
    index = rng.randrange(len(variables))
    smoothed = a.smooth(index)
    consensused = a.consensus(index)
    # consensus(S) <= S <= smooth(S)
    assert a.is_subset(smoothed)
    if not consensused.is_empty:
        assert consensused.is_subset(a)
    # both are cylinders: quantifying again is idempotent
    assert smoothed.smooth(index) == smoothed
    if not consensused.is_empty:
        assert consensused.consensus(index) == consensused
        assert consensused.smooth(index) == consensused

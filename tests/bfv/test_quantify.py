"""Quantification tests (paper Sec 2.5): cofactors, smoothing, consensus."""

import random

import pytest

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic, union
from repro.errors import EmptySetError

from ..conftest import all_points, all_subsets, chi_of

VARS3 = (0, 1, 2)


def make(bdd, subset):
    return from_characteristic(bdd, VARS3, chi_of(bdd, VARS3, subset))


@pytest.fixture
def bdd():
    return BDD(["v0", "v1", "v2"])


def smoothed(subset, index):
    result = set()
    for point in subset:
        for value in (False, True):
            adjusted = list(point)
            adjusted[index] = value
            result.add(tuple(adjusted))
    return frozenset(result)


def consensused(subset, index):
    result = set()
    for point in all_points(3):
        low = list(point)
        low[index] = False
        high = list(point)
        high[index] = True
        if tuple(low) in subset and tuple(high) in subset:
            result.add(point)
    return frozenset(result)


class TestVectorCofactor:
    def test_cofactor_splits_domain(self, bdd):
        # Range(F|v=0) UNION Range(F|v=1) == Range(F): the expansion the
        # paper uses for quantification (footnote: domain partitioning).
        rng = random.Random(2)
        for subset in rng.sample(list(all_subsets(3)), 25):
            vec = make(bdd, subset)
            for index in range(3):
                lo = vec.cofactor(index, False)
                hi = vec.cofactor(index, True)
                assert set(union(lo, hi).enumerate()) == subset

    def test_cofactor_of_free_bit_restricts(self, bdd):
        vec = BFV.universe(bdd, VARS3)
        lo = vec.cofactor(0, False)
        assert all(not p[0] for p in lo.enumerate())

    def test_cofactor_of_forced_bit_is_noop_on_range(self, bdd):
        subset = frozenset(
            [(True, False, False), (True, True, False)]
        )  # bit 0 forced to 1
        vec = make(bdd, subset)
        lo = vec.cofactor(0, False)
        assert set(lo.enumerate()) == subset


class TestSmooth:
    def test_exhaustive(self, bdd):
        for subset in all_subsets(3):
            vec = make(bdd, subset)
            for index in range(3):
                result = vec.smooth(index)
                assert result == make(bdd, smoothed(subset, index)), (
                    sorted(subset),
                    index,
                )

    def test_smooth_contains_original(self, bdd):
        rng = random.Random(8)
        for subset in rng.sample(list(all_subsets(3)), 20):
            vec = make(bdd, subset)
            assert vec.is_subset(vec.smooth(1))

    def test_smooth_idempotent(self, bdd):
        vec = make(bdd, frozenset([(True, False, True)]))
        once = vec.smooth(2)
        assert once.smooth(2) == once

    def test_smooth_empty(self, bdd):
        empty = BFV.empty(bdd, VARS3)
        assert empty.smooth(0).is_empty


class TestConsensus:
    def test_exhaustive(self, bdd):
        for subset in all_subsets(3):
            vec = make(bdd, subset)
            for index in range(3):
                result = vec.consensus(index)
                expected = consensused(subset, index)
                if not expected:
                    assert result.is_empty, (sorted(subset), index)
                else:
                    assert result == make(bdd, expected)

    def test_consensus_within_original(self, bdd):
        rng = random.Random(10)
        for subset in rng.sample(list(all_subsets(3)), 20):
            vec = make(bdd, subset)
            result = vec.consensus(0)
            if not result.is_empty:
                assert result.is_subset(vec)

    def test_consensus_of_cylinder_is_identity(self, bdd):
        cylinder = smoothed(frozenset([(False, True, False)]), 1)
        vec = make(bdd, cylinder)
        assert vec.consensus(1) == vec

    def test_consensus_empty(self, bdd):
        empty = BFV.empty(bdd, VARS3)
        assert empty.consensus(2).is_empty

    def test_consensus_singleton_is_empty(self, bdd):
        vec = BFV.point(bdd, VARS3, (True, True, True))
        assert vec.consensus(0).is_empty


class TestQuantifierDuality:
    def test_consensus_subset_smooth(self, bdd):
        rng = random.Random(12)
        for subset in rng.sample(list(all_subsets(3)), 15):
            vec = make(bdd, subset)
            for index in range(3):
                consensus = vec.consensus(index)
                smooth = vec.smooth(index)
                if not consensus.is_empty:
                    assert consensus.is_subset(smooth)

    def test_errors_on_empty_cofactor(self, bdd):
        with pytest.raises(EmptySetError):
            BFV.empty(bdd, VARS3).cofactor(0, True)


class TestProject:
    def test_matches_iterated_smooth(self, bdd):
        import random

        rng = random.Random(44)
        for subset in rng.sample(list(all_subsets(3)), 25):
            vec = make(bdd, subset)
            projected = vec.project({0})
            expected = vec.smooth(1).smooth(2)
            assert projected == expected

    def test_keep_everything_is_identity(self, bdd):
        vec = make(bdd, frozenset([(True, False, True)]))
        assert vec.project({0, 1, 2}) == vec

    def test_keep_nothing_gives_universe(self, bdd):
        from repro.bfv import BFV

        vec = make(bdd, frozenset([(True, False, True)]))
        assert vec.project(set()) == BFV.universe(bdd, VARS3)

    def test_out_of_range_rejected(self, bdd):
        from repro.errors import BFVError

        vec = make(bdd, frozenset([(True, True, True)]))
        with pytest.raises(BFVError):
            vec.project({5})

    def test_counter_value_abstraction(self, bdd):
        # project {(a, b, a AND b)} onto bit 2: cylinder over {0, 1}
        points = {
            (a, b, a and b) for a in (False, True) for b in (False, True)
        }
        vec = make(bdd, points)
        projected = vec.project({2})
        assert projected.count() == 8  # both bit-2 values occur

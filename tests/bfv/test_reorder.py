"""Component-reordering tests (the paper's future-work direction)."""

import random

import pytest

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic
from repro.bfv.reorder import (
    functional_dependencies,
    greedy_component_order,
    reorder_components,
)
from repro.errors import BFVError

from ..conftest import all_subsets, chi_of


def make(bdd, variables, subset):
    return from_characteristic(bdd, variables, chi_of(bdd, variables, subset))


class TestReorderComponents:
    def test_preserves_set_exhaustive(self):
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        perms = [[0, 1, 2], [2, 1, 0], [1, 2, 0], [0, 2, 1]]
        for subset in list(all_subsets(3))[::13]:
            vec = make(bdd, variables, subset)
            for perm in perms:
                reordered = reorder_components(vec, perm)
                reordered.check_structure()
                # enumerate() yields bits in the *new* component order.
                expected = {
                    tuple(point[i] for i in perm) for point in subset
                }
                assert set(reordered.enumerate()) == expected

    def test_roundtrip_permutation(self):
        bdd = BDD(["v0", "v1", "v2", "v3"])
        variables = (0, 1, 2, 3)
        rng = random.Random(3)
        points = {
            tuple(rng.random() < 0.5 for _ in range(4)) for _ in range(6)
        }
        vec = make(bdd, variables, points)
        perm = [2, 0, 3, 1]
        inverse = [perm.index(i) for i in range(4)]
        there = reorder_components(vec, perm)
        back = reorder_components(there, inverse)
        assert back == vec

    def test_identity_permutation(self):
        bdd = BDD(["v0", "v1"])
        vec = BFV.from_points(bdd, (0, 1), [(True, False)])
        assert reorder_components(vec, [0, 1]) == vec

    def test_empty(self):
        bdd = BDD(["v0", "v1"])
        empty = BFV.empty(bdd, (0, 1))
        assert reorder_components(empty, [1, 0]).is_empty

    def test_invalid_permutation(self):
        bdd = BDD(["v0", "v1"])
        vec = BFV.universe(bdd, (0, 1))
        with pytest.raises(BFVError):
            reorder_components(vec, [0, 0])

    def test_order_changes_component_sizes(self):
        # Set where bit 2 = bit 0 XOR bit 1: placing the dependent bit
        # first costs nodes, placing it last makes it a function of the
        # earlier (free) bits.
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        points = {
            (a, b, a != b)
            for a in (False, True)
            for b in (False, True)
        }
        vec = make(bdd, variables, points)
        # natural order: v2 determined by v0, v1
        assert functional_dependencies(vec) == [2]
        moved = reorder_components(vec, [2, 0, 1])
        # the dependent bit first: now bit placed last is determined
        assert functional_dependencies(moved) == [2]


class TestFunctionalDependencies:
    def test_shadow_set(self):
        bdd = BDD(["m0", "m1", "c0", "c1"])
        variables = (0, 1, 2, 3)
        # copies: c_i == m_i
        points = {
            (a, b, a, b) for a in (False, True) for b in (False, True)
        }
        vec = make(bdd, variables, points)
        assert functional_dependencies(vec) == [2, 3]

    def test_universe_has_none(self):
        bdd = BDD(["v0", "v1"])
        assert functional_dependencies(BFV.universe(bdd, (0, 1))) == []

    def test_singleton_all_dependent(self):
        bdd = BDD(["v0", "v1", "v2"])
        vec = BFV.point(bdd, (0, 1, 2), (True, False, True))
        assert functional_dependencies(vec) == [0, 1, 2]

    def test_empty(self):
        bdd = BDD(["v0"])
        assert functional_dependencies(BFV.empty(bdd, (0,))) == []


class TestGreedyOrder:
    def test_produces_permutation(self):
        bdd = BDD(["v%d" % i for i in range(4)])
        rng = random.Random(5)
        points = {
            tuple(rng.random() < 0.5 for _ in range(4)) for _ in range(5)
        }
        vec = make(bdd, tuple(range(4)), points)
        order = greedy_component_order(vec)
        assert sorted(order) == [0, 1, 2, 3]

    def test_reorder_by_greedy_preserves_set(self):
        bdd = BDD(["v%d" % i for i in range(4)])
        points = {
            (a, b, a != b, a and b)
            for a in (False, True)
            for b in (False, True)
        }
        vec = make(bdd, tuple(range(4)), points)
        order = greedy_component_order(vec)
        reordered = reorder_components(vec, order)
        # same member count, canonical under the new order
        assert reordered.count() == vec.count()
        reordered.check_structure()

    def test_greedy_not_worse_on_dependent_bits(self):
        # A set with a heavy dependent bit placed badly: greedy should
        # find an order whose shared size is no worse than the bad one.
        bdd = BDD(["v%d" % i for i in range(5)])
        variables = tuple(range(5))
        points = set()
        for mask in range(16):
            bits = [bool(mask >> i & 1) for i in range(4)]
            parity = bits[0] != bits[1] != bits[2] != bits[3]
            points.add((parity, *bits))  # dependent bit FIRST
        vec = make(bdd, variables, points)
        order = greedy_component_order(vec)
        improved = reorder_components(vec, order)
        assert improved.shared_size() <= vec.shared_size()

    def test_empty(self):
        bdd = BDD(["v0", "v1"])
        assert greedy_component_order(BFV.empty(bdd, (0, 1))) == [0, 1]

"""Re-parameterization tests (paper Sec 2.6).

A raw vector over parameters is canonicalized by eliminating the
parameters; the result must be the canonical vector of the brute-force
range, for every quantification schedule.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic, reparameterize
from repro.bfv.reparam import SCHEDULES, eliminate_params
from repro.errors import BFVError

from ..conftest import build_expr, chi_of, random_expr


def setup(width, params):
    names = ["v%d" % i for i in range(width)] + [
        "w%d" % i for i in range(params)
    ]
    bdd = BDD(names)
    return bdd, tuple(range(width)), list(range(width, width + params))


def brute_range(bdd, raw, param_vars):
    points = set()
    for combo in itertools.product([False, True], repeat=len(param_vars)):
        env = dict(zip(param_vars, combo))
        points.add(tuple(bdd.evaluate(f, env) for f in raw))
    return points


def random_param_function(rng, bdd, param_vars, depth=3):
    expr = random_expr(rng, len(param_vars), depth)

    def shift(e):
        if e[0] == "var":
            return ("var", param_vars[e[1]])
        if e[0] in ("const",):
            return e
        if e[0] == "not":
            return ("not", shift(e[1]))
        return (e[0], shift(e[1]), shift(e[2]))

    return build_expr(bdd, shift(expr))


class TestEliminateParams:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_random_vectors(self, schedule):
        rng = random.Random(hash(schedule) & 0xFFFF)
        for _ in range(40):
            bdd, choice_vars, params = setup(3, 3)
            raw = [
                random_param_function(rng, bdd, params) for _ in range(3)
            ]
            vec = reparameterize(bdd, choice_vars, raw, params, schedule)
            expected = brute_range(bdd, raw, params)
            assert set(vec.enumerate()) == expected
            # canonical: equals the from-scratch construction
            assert vec == from_characteristic(
                bdd, choice_vars, chi_of(bdd, choice_vars, expected)
            )

    def test_schedules_agree(self):
        rng = random.Random(123)
        for _ in range(15):
            bdd, choice_vars, params = setup(4, 3)
            raw = [
                random_param_function(rng, bdd, params) for _ in range(4)
            ]
            results = {
                schedule: reparameterize(
                    bdd, choice_vars, raw, params, schedule
                )
                for schedule in SCHEDULES
            }
            assert len(set(results.values())) == 1

    def test_constant_vector(self):
        bdd, choice_vars, params = setup(3, 2)
        raw = [bdd.true, bdd.false, bdd.true]
        vec = reparameterize(bdd, choice_vars, raw, params)
        assert set(vec.enumerate()) == {(True, False, True)}

    def test_no_params_canonicalizes_structural_vector(self):
        # A vector already canonical passes through unchanged.
        bdd, choice_vars, params = setup(3, 0)
        canonical = BFV.universe(bdd, choice_vars)
        comps = eliminate_params(
            bdd, choice_vars, list(canonical.components), []
        )
        assert tuple(comps) == canonical.components

    def test_unknown_schedule_rejected(self):
        bdd, choice_vars, params = setup(2, 1)
        with pytest.raises(BFVError):
            eliminate_params(
                bdd, choice_vars, [bdd.true, bdd.true], params, "bogus"
            )

    def test_leftover_vars_rejected(self):
        bdd, choice_vars, params = setup(2, 2)
        raw = [bdd.var(params[0]), bdd.var(params[1])]
        with pytest.raises(BFVError):
            reparameterize(bdd, choice_vars, raw, params[:1])

    def test_duplicate_params_handled(self):
        bdd, choice_vars, params = setup(2, 1)
        raw = [bdd.var(params[0]), bdd.not_(bdd.var(params[0]))]
        vec = reparameterize(
            bdd, choice_vars, raw, [params[0], params[0]]
        )
        assert set(vec.enumerate()) == {(False, True), (True, False)}

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_hypothesis_wider(self, seed):
        rng = random.Random(seed)
        width = rng.randint(2, 4)
        nparams = rng.randint(1, 4)
        bdd, choice_vars, params = setup(width, nparams)
        raw = [
            random_param_function(rng, bdd, params, depth=2)
            for _ in range(width)
        ]
        vec = reparameterize(bdd, choice_vars, raw, params)
        assert set(vec.enumerate()) == brute_range(bdd, raw, params)


class TestMixedChoiceAndParamInputs:
    def test_per_point_canonical_vector(self):
        # Components may depend on choice variables as long as the
        # vector is canonical for every fixed parameter point (as the
        # union intermediates are): here w=0 gives the singleton
        # {(0,0)} and w=1 the canonical pair {(1,0),(1,1)}.
        bdd, choice_vars, params = setup(2, 1)
        w = params[0]
        f0 = bdd.var(w)
        f1 = bdd.and_(bdd.var(w), bdd.var(choice_vars[1]))
        vec = reparameterize(bdd, choice_vars, [f0, f1], [w])
        assert set(vec.enumerate()) == {
            (False, False),
            (True, False),
            (True, True),
        }

    def test_non_canonical_per_point_is_unsupported(self):
        # Documented precondition: (0, v0) is NOT canonical for its
        # point set {(0,0),(0,1)} (member (0,1) is not a fixed point),
        # and elimination makes no promise about such inputs.  This test
        # pins the contract rather than the (unspecified) output.
        bdd, choice_vars, params = setup(2, 1)
        raw = [bdd.false, bdd.var(choice_vars[0])]
        vec = reparameterize(bdd, choice_vars, raw, params)
        vec.check_structure()  # output is still structurally valid

"""Set-union tests (paper Sec 2.3): exhaustive, algebraic and randomized.

The exhaustive width-2 block checks *all* 225 pairs of non-empty subsets
for exact canonical results; the width-3 block samples, and hypothesis
covers wider widths against Python-set semantics.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic, union
from repro.bfv.ops import raw_union
from repro.errors import BFVError

from ..conftest import all_subsets, chi_of


def make(bdd, variables, subset):
    return from_characteristic(bdd, variables, chi_of(bdd, variables, subset))


class TestExhaustiveWidth2:
    def test_all_pairs(self):
        bdd = BDD(["v0", "v1"])
        variables = (0, 1)
        vectors = {s: make(bdd, variables, s) for s in all_subsets(2)}
        for a, fa in vectors.items():
            for b, fb in vectors.items():
                result = union(fa, fb)
                assert result == vectors[a | b], (sorted(a), sorted(b))


class TestSampledWidth3:
    def test_sampled_pairs(self):
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        rng = random.Random(0)
        subsets = list(all_subsets(3))
        vectors = {s: make(bdd, variables, s) for s in subsets}
        for _ in range(400):
            a = rng.choice(subsets)
            b = rng.choice(subsets)
            assert union(vectors[a], vectors[b]) == vectors[a | b]


class TestAlgebraicProperties:
    @pytest.fixture
    def setup(self):
        bdd = BDD(["v0", "v1", "v2"])
        variables = (0, 1, 2)
        rng = random.Random(5)
        subsets = rng.sample(list(all_subsets(3)), 12)
        vectors = [make(bdd, variables, s) for s in subsets]
        return bdd, variables, vectors

    def test_idempotent(self, setup):
        _, _, vectors = setup
        for vec in vectors:
            assert union(vec, vec) == vec

    def test_commutative(self, setup):
        _, _, vectors = setup
        for a in vectors[:6]:
            for b in vectors[6:]:
                assert union(a, b) == union(b, a)

    def test_associative(self, setup):
        _, _, vectors = setup
        a, b, c = vectors[0], vectors[1], vectors[2]
        assert union(union(a, b), c) == union(a, union(b, c))

    def test_empty_is_identity(self, setup):
        bdd, variables, vectors = setup
        empty = BFV.empty(bdd, variables)
        for vec in vectors:
            assert union(vec, empty) == vec
            assert union(empty, vec) == vec
        assert union(empty, empty).is_empty

    def test_universe_absorbs(self, setup):
        bdd, variables, vectors = setup
        universe = BFV.universe(bdd, variables)
        for vec in vectors:
            assert union(vec, universe) == universe

    def test_result_is_canonical(self, setup):
        bdd, variables, vectors = setup
        for a in vectors[:4]:
            for b in vectors[4:8]:
                result = union(a, b)
                result.check_structure()
                rebuilt = from_characteristic(
                    bdd, variables, result.to_characteristic()
                )
                assert rebuilt == result

    def test_mismatched_spaces_rejected(self, setup):
        bdd, variables, vectors = setup
        other = BDD(["v0", "v1", "v2"])
        foreign = BFV.universe(other, variables)
        with pytest.raises(BFVError):
            union(vectors[0], foreign)


class TestRawUnionPrefixSkip:
    def test_prefix_skip_matches_full_run(self):
        bdd = BDD(["v0", "v1", "v2", "v3"])
        variables = (0, 1, 2, 3)
        rng = random.Random(9)
        subsets = list(all_subsets(3))
        for _ in range(30):
            # Build two vectors sharing their first component by
            # extending width-3 sets with a shared leading free bit.
            a = rng.choice(subsets)
            b = rng.choice(subsets)
            fa = [bdd.var(0)] + list(
                make_shifted(bdd, a)
            )
            fb = [bdd.var(0)] + list(
                make_shifted(bdd, b)
            )
            full = raw_union(bdd, variables, fa, fb, start=0)
            skipped = raw_union(bdd, variables, fa, fb, start=1)
            assert full == skipped


def make_shifted(bdd, subset):
    """Canonical components of a width-3 set over v1..v3."""
    variables = (1, 2, 3)
    vec = from_characteristic(
        bdd, variables, chi_of(bdd, variables, subset)
    )
    return vec.components


class TestHypothesisWidth5:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_union_matches_set_semantics(self, seed):
        rng = random.Random(seed)
        width = rng.randint(3, 5)
        bdd = BDD(["v%d" % i for i in range(width)])
        variables = tuple(range(width))
        a = {
            tuple(rng.random() < 0.5 for _ in range(width))
            for _ in range(rng.randint(1, 8))
        }
        b = {
            tuple(rng.random() < 0.5 for _ in range(width))
            for _ in range(rng.randint(1, 8))
        }
        fa = make(bdd, variables, a)
        fb = make(bdd, variables, b)
        result = union(fa, fb)
        assert set(result.enumerate()) == a | b
        assert result == make(bdd, variables, a | b)

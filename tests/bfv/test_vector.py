"""BFV type tests: invariants, selection semantics, point queries."""

import pytest

from repro.bdd import BDD
from repro.bfv import BFV, from_characteristic
from repro.errors import BFVError, EmptySetError

from ..conftest import all_points, chi_of


@pytest.fixture
def bdd():
    return BDD(["v0", "v1", "v2"])


@pytest.fixture
def vars3():
    return (0, 1, 2)


class TestConstruction:
    def test_universe(self, bdd, vars3):
        universe = BFV.universe(bdd, vars3)
        assert universe.count() == 8
        assert all(universe.contains(p) for p in all_points(3))

    def test_point(self, bdd, vars3):
        point = BFV.point(bdd, vars3, (True, False, True))
        assert point.count() == 1
        assert point.contains((True, False, True))
        assert not point.contains((True, False, False))

    def test_point_width_mismatch(self, bdd, vars3):
        with pytest.raises(BFVError):
            BFV.point(bdd, vars3, (True,))

    def test_empty(self, bdd, vars3):
        empty = BFV.empty(bdd, vars3)
        assert empty.is_empty
        assert empty.count() == 0
        assert not empty.contains((False, False, False))
        assert list(empty.enumerate()) == []
        assert empty.shared_size() == 0

    def test_from_points(self, bdd, vars3):
        points = [(False, False, True), (True, True, False)]
        vec = BFV.from_points(bdd, vars3, points)
        assert set(vec.enumerate()) == set(points)

    def test_component_count_mismatch(self, bdd, vars3):
        with pytest.raises(BFVError):
            BFV(bdd, vars3, [bdd.true])

    def test_width(self, bdd, vars3):
        assert BFV.universe(bdd, vars3).width == 3


class TestStructureValidation:
    def test_non_triangular_rejected(self, bdd, vars3):
        # component 0 depending on v1 violates triangular support
        with pytest.raises(BFVError):
            BFV(bdd, vars3, [bdd.var(1), bdd.var(1), bdd.var(2)])

    def test_non_monotone_rejected(self, bdd, vars3):
        # f0 = NOT v0 is antitone in its own choice variable
        with pytest.raises(BFVError):
            BFV(bdd, vars3, [bdd.not_(bdd.var(0)), bdd.var(1), bdd.var(2)])

    def test_valid_structure_accepted(self, bdd, vars3):
        # Table 1 vector: (v0, NOT v0 AND v1, v2)
        comps = [
            bdd.var(0),
            bdd.and_(bdd.not_(bdd.var(0)), bdd.var(1)),
            bdd.var(2),
        ]
        vec = BFV(bdd, vars3, comps)
        vec.check_structure()


class TestSelection:
    def test_members_are_fixed_points(self, bdd, vars3):
        chi = chi_of(bdd, vars3, [(False, True, False), (True, False, True)])
        vec = from_characteristic(bdd, vars3, chi)
        for point in vec.enumerate():
            assert vec.select(point) == point

    def test_nearest_member_mapping(self, bdd, vars3):
        # S = {000..101} (Table 1); 110 and 111 map to their d-nearest.
        points = [p for p in all_points(3) if not (p[0] and p[1])]
        vec = from_characteristic(bdd, vars3, chi_of(bdd, vars3, points))

        def dist(x, y):
            return sum(
                (1 << (2 - i)) for i in range(3) if x[i] != y[i]
            )

        for y in all_points(3):
            nearest = min(points, key=lambda x: dist(x, y))
            assert vec.select(y) == nearest

    def test_select_width_check(self, bdd, vars3):
        vec = BFV.universe(bdd, vars3)
        with pytest.raises(BFVError):
            vec.select((True,))

    def test_select_on_empty_raises(self, bdd, vars3):
        with pytest.raises(EmptySetError):
            BFV.empty(bdd, vars3).select((True, False, False))


class TestComponentConditions:
    def test_partition(self, bdd, vars3):
        chi = chi_of(
            bdd, vars3, [(False, False, False), (True, True, False)]
        )
        vec = from_characteristic(bdd, vars3, chi)
        for i in range(3):
            f1, f0, fc = vec.component_conditions(i)
            # mutually exclusive and complete
            assert bdd.and_(f1, f0) == bdd.false
            assert bdd.and_(f1, fc) == bdd.false
            assert bdd.and_(f0, fc) == bdd.false
            assert bdd.disjoin([f1, f0, fc]) == bdd.true

    def test_forced_second_bit(self, bdd, vars3):
        # S = {00x, 11x}: bit 2 is forced equal to bit 1.
        points = [
            (False, False, False),
            (False, False, True),
            (True, True, False),
            (True, True, True),
        ]
        vec = from_characteristic(bdd, vars3, chi_of(bdd, vars3, points))
        f1, f0, fc = vec.component_conditions(1)
        assert fc == bdd.false
        assert f1 == bdd.var(0)


class TestEqualityAndSizes:
    def test_canonical_equality(self, bdd, vars3):
        points = [(True, False, False), (False, True, True)]
        a = BFV.from_points(bdd, vars3, points)
        b = BFV.from_points(bdd, vars3, reversed(points))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_sets_differ(self, bdd, vars3):
        a = BFV.point(bdd, vars3, (True, True, True))
        b = BFV.point(bdd, vars3, (False, True, True))
        assert a != b

    def test_same_space(self, bdd, vars3):
        a = BFV.universe(bdd, vars3)
        other = BDD(["v0", "v1", "v2"])
        b = BFV.universe(other, vars3)
        assert not a.same_space(b)

    def test_sizes(self, bdd, vars3):
        vec = BFV.universe(bdd, vars3)
        assert vec.shared_size() >= 3
        assert len(vec.component_sizes()) == 3

    def test_repr(self, bdd, vars3):
        assert "width=3" in repr(BFV.universe(bdd, vars3))
        assert "empty" in repr(BFV.empty(bdd, vars3))

"""ISCAS'89 .bench format tests: parsing, writing, round-trips, errors."""

import pytest

from repro.circuits import bench
from repro.errors import BenchFormatError
from repro.sim import explicit_reachable

# The classic tiny ISCAS'89 benchmark s27 (3 DFFs, 4 inputs).
S27 = """
# s27 benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)  # spacing/comment tolerated
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G13 = NAND(G2, G12)
G9 = NOR(G16, G15)
G10 = NOR(G14, G11)
G11 = OR(G5, G9)
G12 = OR(G1, G7)
"""


class TestParsing:
    def test_s27_shape(self):
        circuit = bench.loads(S27, "s27")
        assert circuit.stats() == {
            "inputs": 4,
            "outputs": 1,
            "latches": 3,
            "gates": 10,
        }
        assert circuit.state_nets == ["G5", "G6", "G7"]

    def test_s27_reachability_oracle(self):
        # s27 from the all-zero initial state reaches 6 of 8 states
        # (the well-known result for the standard netlist).
        circuit = bench.loads(S27, "s27")
        reachable = explicit_reachable(circuit)
        assert len(reachable) == 6

    def test_comments_and_blank_lines(self):
        text = "# leading comment\n\nINPUT(a)\nOUTPUT(b)\nb = NOT(a) # trailing\n"
        circuit = bench.loads(text)
        assert circuit.inputs == ["a"]

    def test_case_insensitive_ops(self):
        circuit = bench.loads("INPUT(a)\nb = not(a)\nc = buff(b)\n")
        assert circuit.gates["c"].op == "BUF"

    def test_dff_arity_enforced(self):
        with pytest.raises(BenchFormatError):
            bench.loads("INPUT(a)\nq = DFF(a, a)\n")

    def test_unknown_operator(self):
        with pytest.raises(BenchFormatError):
            bench.loads("INPUT(a)\nb = FROB(a)\n")

    def test_unparsable_line(self):
        with pytest.raises(BenchFormatError) as info:
            bench.loads("INPUT(a)\nwhat is this\n")
        assert "line 2" in str(info.value)


class TestWriting:
    def test_roundtrip_preserves_semantics(self):
        circuit = bench.loads(S27, "s27")
        text = bench.dumps(circuit)
        reparsed = bench.loads(text, "s27")
        assert reparsed.stats() == circuit.stats()
        assert explicit_reachable(reparsed) == explicit_reachable(circuit)

    def test_file_io(self, tmp_path):
        circuit = bench.loads(S27, "s27")
        path = tmp_path / "s27.bench"
        bench.dump(circuit, str(path))
        loaded = bench.load(str(path))
        assert loaded.name == "s27"
        assert loaded.stats() == circuit.stats()

    def test_generators_roundtrip(self):
        from repro.circuits import generators

        for circuit in (
            generators.counter(3),
            generators.lfsr(4),
            generators.fifo_controller(2),
        ):
            reparsed = bench.loads(bench.dumps(circuit), circuit.name)
            # DFF init is 0 in the format; compare from all-zero start.
            zeros = [tuple([False] * circuit.num_latches)]
            assert explicit_reachable(
                reparsed, initial_states=zeros
            ) == explicit_reachable(circuit, initial_states=zeros)

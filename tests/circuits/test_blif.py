"""BLIF format tests: parsing, writing, init values, round-trips."""

import pytest

from repro.circuits import blif, generators
from repro.errors import BenchFormatError
from repro.sim import ConcreteSimulator, explicit_reachable

SIMPLE = """\
# a tiny sequential model
.model demo
.inputs a b
.outputs out
.latch next q re clk 1
.names a b mid
11 1
.names mid q next
1- 1
-1 1
.names q out
0 1
.end
"""


class TestParsing:
    def test_structure(self):
        circuit = blif.loads(SIMPLE)
        assert circuit.name == "demo"
        assert circuit.inputs == ["a", "b"]
        assert circuit.outputs == ["out"]
        assert circuit.num_latches == 1
        assert circuit.latches["q"].init is True

    def test_cover_semantics(self):
        circuit = blif.loads(SIMPLE)
        sim = ConcreteSimulator(circuit)
        values = sim.evaluate_nets((False,), {"a": True, "b": True})
        assert values["mid"] is True
        assert values["next"] is True  # mid OR q
        assert values["out"] is True  # NOT q
        assert sim.step((False,), {"a": True, "b": False}) == (False,)

    def test_dont_care_row(self):
        text = ".model m\n.inputs a b\n.outputs o\n.names a b o\n-1 1\n.end\n"
        circuit = blif.loads(text)
        sim = ConcreteSimulator(circuit)
        assert sim.outputs((), {"a": False, "b": True}) == {"o": True}
        assert sim.outputs((), {"a": True, "b": False}) == {"o": False}

    def test_constant_nodes(self):
        text = (
            ".model m\n.inputs a\n.outputs one zero\n"
            ".names one\n1\n.names zero\n.end\n"
        )
        circuit = blif.loads(text)
        sim = ConcreteSimulator(circuit)
        outs = sim.outputs((), {"a": False})
        assert outs == {"one": True, "zero": False}

    def test_continuation_lines(self):
        text = (
            ".model m\n.inputs a \\\nb\n.outputs o\n"
            ".names a b o\n11 1\n.end\n"
        )
        circuit = blif.loads(text)
        assert circuit.inputs == ["a", "b"]

    def test_latch_without_type(self):
        text = ".model m\n.inputs a\n.outputs q\n.latch a q 0\n.end\n"
        circuit = blif.loads(text)
        assert circuit.latches["q"].init is False

    def test_rejects_offset_covers(self):
        text = ".model m\n.inputs a\n.outputs o\n.names a o\n1 0\n.end\n"
        with pytest.raises(BenchFormatError):
            blif.loads(text)

    def test_rejects_subckt(self):
        with pytest.raises(BenchFormatError):
            blif.loads(".model m\n.subckt foo a=b\n.end\n")

    def test_rejects_arity_mismatch(self):
        text = ".model m\n.inputs a b\n.outputs o\n.names a b o\n1 1\n.end\n"
        with pytest.raises(BenchFormatError):
            blif.loads(text)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: generators.counter(3),
            lambda: generators.lfsr(4),  # non-zero init!
            lambda: generators.token_ring(3),  # non-zero init!
            lambda: generators.fifo_controller(1),
            lambda: generators.traffic_light(),
        ],
        ids=["counter", "lfsr", "ring", "fifo", "traffic"],
    )
    def test_semantics_preserved(self, factory):
        original = factory()
        reparsed = blif.loads(blif.dumps(original), original.name)
        # BLIF preserves latch init values, so default reachability
        # matches (unlike .bench, which forces init = 0).
        assert reparsed.initial_state == original.initial_state
        assert explicit_reachable(reparsed) == explicit_reachable(original)

    def test_file_io(self, tmp_path):
        circuit = generators.johnson(3)
        path = tmp_path / "johnson.blif"
        blif.dump(circuit, str(path))
        loaded = blif.load(str(path))
        assert loaded.name == "johnson"
        assert explicit_reachable(loaded) == explicit_reachable(circuit)

    def test_xor_xnor_covers(self):
        from repro.circuits.netlist import Circuit

        circuit = Circuit("x")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_input("c")
        circuit.add_gate("x1", "XOR", ("a", "b", "c"))
        circuit.add_gate("x2", "XNOR", ("a", "b"))
        circuit.add_output("x1")
        circuit.add_output("x2")
        circuit.validate()
        reparsed = blif.loads(blif.dumps(circuit), "x")
        sim_a = ConcreteSimulator(circuit)
        sim_b = ConcreteSimulator(reparsed)
        import itertools

        for values in itertools.product([False, True], repeat=3):
            env = dict(zip(("a", "b", "c"), values))
            assert sim_a.outputs((), env) == sim_b.outputs((), env)

"""Product-machine and miter construction tests."""

import itertools

import pytest

from repro.circuits import generators as gen
from repro.circuits.compose import miter, product
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError
from repro.sim import ConcreteSimulator


def gray_counter(n):
    """Binary counter with gray-coded outputs (equivalent output FSM)."""
    circuit = gen.counter(n)
    # gray output g_i = s_i XOR s_{i+1}
    # (rebuild a renamed output interface for miter tests)
    return circuit


class TestProduct:
    def test_shares_inputs_disjoint_state(self):
        a = gen.counter(3)
        b = gen.counter(3)
        combined, left_map, right_map = product(a, b)
        assert combined.inputs == ["en"]
        assert combined.num_latches == 6
        assert left_map["s0"] == "l_s0"
        assert right_map["s0"] == "r_s0"

    def test_requires_same_inputs(self):
        with pytest.raises(CircuitError):
            product(gen.counter(2), gen.shift_register(2))

    def test_lockstep_semantics(self):
        a = gen.counter(2)
        b = gen.mod_counter_like = gen.counter(2)
        combined, left_map, right_map = product(a, b)
        sim = ConcreteSimulator(combined)
        sim_a = ConcreteSimulator(a)
        state = combined.initial_state
        state_a = a.initial_state
        for step in range(5):
            state = sim.step(state, {"en": True})
            state_a = sim_a.step(state_a, {"en": True})
        values = dict(zip(combined.state_nets, state))
        for i, net in enumerate(a.state_nets):
            assert values[left_map[net]] == state_a[i]
            assert values[right_map[net]] == state_a[i]


class TestMiter:
    def test_equivalent_copies_never_mismatch(self):
        a = gen.counter(3)
        b = gen.counter(3)
        combined = miter(a, b)
        sim = ConcreteSimulator(combined)
        state = combined.initial_state
        for step in range(10):
            outs = sim.outputs(state, {"en": step % 2 == 0})
            assert outs["mismatch"] is False
            state = sim.step(state, {"en": step % 2 == 0})

    def test_different_machines_mismatch(self):
        a = gen.counter(2)  # output: s1 (MSB)
        # a machine with the same interface but inverted behaviour
        b = Circuit("notcounter")
        b.add_input("en")
        b.add_latch("q0", "nq0")
        b.add_latch("s1", "ns1")
        b.xor("nq0", "q0", "en")
        b.and_("ns1", "q0", "en")
        b.add_output("s1")
        b.validate()
        combined = miter(a, b)
        sim = ConcreteSimulator(combined)
        state = combined.initial_state
        mismatched = False
        for _ in range(6):
            outs = sim.outputs(state, {"en": True})
            mismatched = mismatched or outs["mismatch"]
            state = sim.step(state, {"en": True})
        assert mismatched

    def test_requires_same_outputs(self):
        a = gen.counter(2)
        b = Circuit("other")
        b.add_input("en")
        b.add_latch("q", "nq")
        b.not_("nq", "q")
        b.add_output("q")
        b.validate()
        with pytest.raises(CircuitError):
            miter(a, b)

    def test_requires_outputs(self):
        a = Circuit("a")
        a.add_input("x")
        a.add_latch("q", "x")
        b = Circuit("b")
        b.add_input("x")
        b.add_latch("q", "x")
        with pytest.raises(CircuitError):
            miter(a, b)

    def test_multi_output_aggregation(self):
        a = gen.fifo_controller(1)  # outputs: full, empty
        b = gen.fifo_controller(1)
        combined = miter(a, b)
        assert "miter_full" in combined.outputs
        assert "miter_empty" in combined.outputs
        assert "mismatch" in combined.outputs

"""Generator-family tests against closed-form reachable-state counts."""

import pytest

from repro.circuits import generators as gen
from repro.circuits.iscas import s27
from repro.errors import CircuitError
from repro.sim import explicit_reachable


class TestClosedFormCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_counter_reaches_everything(self, n):
        assert len(explicit_reachable(gen.counter(n))) == 2**n

    def test_free_running_counter(self):
        circuit = gen.counter(4, with_enable=False)
        assert circuit.stats()["inputs"] == 0
        assert len(explicit_reachable(circuit)) == 16

    @pytest.mark.parametrize("modulus", [2, 5, 10, 16])
    def test_mod_counter(self, modulus):
        circuit = gen.mod_counter(4, modulus)
        assert len(explicit_reachable(circuit)) == modulus

    def test_mod_counter_bad_modulus(self):
        with pytest.raises(CircuitError):
            gen.mod_counter(3, 9)
        with pytest.raises(CircuitError):
            gen.mod_counter(3, 1)

    @pytest.mark.parametrize("n", [3, 4, 5, 7])
    def test_maximal_lfsr_cycle(self, n):
        assert len(explicit_reachable(gen.lfsr(n))) == 2**n - 1

    def test_lfsr_explicit_taps(self):
        circuit = gen.lfsr(4, taps=(4, 3))
        assert len(explicit_reachable(circuit)) == 15

    def test_lfsr_unknown_width_needs_taps(self):
        with pytest.raises(CircuitError):
            gen.lfsr(17)

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_johnson(self, n):
        assert len(explicit_reachable(gen.johnson(n))) == 2 * n

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_token_ring_stays_one_hot(self, n):
        reachable = explicit_reachable(gen.token_ring(n))
        assert len(reachable) == n
        for state in reachable:
            assert sum(state) == 1

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_shift_register(self, n):
        assert len(explicit_reachable(gen.shift_register(n))) == 2**n

    @pytest.mark.parametrize("pairs", [1, 2, 3])
    def test_coupled_pairs_invariant(self, pairs):
        reachable = explicit_reachable(gen.coupled_pairs(pairs))
        assert len(reachable) == 2**pairs
        for state in reachable:
            # layout: a0, b0, a1, b1, ... pairs interleaved by decl order
            values = dict(zip(gen.coupled_pairs(pairs).state_nets, state))
            for j in range(pairs):
                assert values["a%d" % j] == values["b%d" % j]

    @pytest.mark.parametrize("bits", [1, 2])
    def test_fifo_controller_occupancy_law(self, bits):
        circuit = gen.fifo_controller(bits)
        reachable = explicit_reachable(circuit)
        depth = 1 << bits
        assert len(reachable) == depth * (depth + 1)
        nets = circuit.state_nets
        for state in reachable:
            values = dict(zip(nets, state))
            head = sum(values["h%d" % i] << i for i in range(bits))
            tail = sum(values["t%d" % i] << i for i in range(bits))
            count = sum(values["c%d" % i] << i for i in range(bits + 1))
            assert 0 <= count <= depth
            assert (tail - head) % depth == count % depth

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_round_robin_arbiter(self, n):
        reachable = explicit_reachable(gen.round_robin_arbiter(n))
        assert len(reachable) == n
        for state in reachable:
            assert sum(state) == 1

    def test_combination_lock_linear(self):
        sequence = [True, False, True, True]
        circuit = gen.combination_lock(sequence)
        assert len(explicit_reachable(circuit)) == len(sequence) + 1

    def test_shadow_datapath_dependency(self):
        circuit = gen.shadow_datapath(3, shadows=1)
        reachable = explicit_reachable(circuit)
        assert len(reachable) == 2**3
        nets = circuit.state_nets
        for state in reachable:
            values = dict(zip(nets, state))
            for i in range(3):
                expected = values["r0_%d" % i] != values["r0_%d" % ((i + 1) % 3)]
                assert values["r1_%d" % i] == expected

    def test_traffic_light_runs(self):
        reachable = explicit_reachable(gen.traffic_light())
        assert 4 <= len(reachable) <= 16

    def test_random_control_deterministic(self):
        a = gen.random_control(6, seed=5)
        b = gen.random_control(6, seed=5)
        assert explicit_reachable(a) == explicit_reachable(b)

    def test_s27_embedded(self):
        assert len(explicit_reachable(s27())) == 6

"""Netlist model tests: construction, validation, topological order."""

import pytest

from repro.circuits.netlist import Circuit, Gate, Latch
from repro.errors import CircuitError


class TestGate:
    def test_evaluate_all_ops(self):
        cases = {
            "AND": [(True, True, True), (True, False, False)],
            "OR": [(False, False, False), (True, False, True)],
            "NAND": [(True, True, False), (False, True, True)],
            "NOR": [(False, False, True), (True, False, False)],
            "XOR": [(True, False, True), (True, True, False)],
            "XNOR": [(True, True, True), (True, False, False)],
        }
        for op, rows in cases.items():
            gate = Gate("g", op, ("a", "b"))
            for a, b, expected in rows:
                assert gate.evaluate([a, b]) is expected, (op, a, b)
        assert Gate("g", "NOT", ("a",)).evaluate([True]) is False
        assert Gate("g", "BUF", ("a",)).evaluate([True]) is True

    def test_wide_gates(self):
        assert Gate("g", "AND", ("a", "b", "c")).evaluate([1, 1, 1])
        assert Gate("g", "XOR", ("a", "b", "c")).evaluate([1, 1, 1])
        assert not Gate("g", "XOR", ("a", "b", "c")).evaluate([1, 1, 0])

    def test_unknown_op_rejected(self):
        with pytest.raises(CircuitError):
            Gate("g", "MAJ", ("a", "b", "c"))

    def test_unary_arity_enforced(self):
        with pytest.raises(CircuitError):
            Gate("g", "NOT", ("a", "b"))

    def test_empty_inputs_rejected(self):
        with pytest.raises(CircuitError):
            Gate("g", "AND", ())


class TestCircuitConstruction:
    def test_basic_build(self):
        circuit = Circuit("demo")
        circuit.add_input("a")
        circuit.add_latch("q", "d", init=True)
        circuit.and_("d", "a", "q")
        circuit.add_output("q")
        circuit.validate()
        assert circuit.num_latches == 1
        assert circuit.num_gates == 1
        assert circuit.initial_state == (True,)
        assert circuit.state_nets == ["q"]
        assert circuit.stats() == {
            "inputs": 1,
            "outputs": 1,
            "latches": 1,
            "gates": 1,
        }

    def test_duplicate_driver_rejected(self):
        circuit = Circuit("demo")
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.add_gate("a", "NOT", ("a",))
        with pytest.raises(CircuitError):
            circuit.add_latch("a", "a")
        with pytest.raises(CircuitError):
            circuit.add_input("a")

    def test_driver_of(self):
        circuit = Circuit("demo")
        circuit.add_input("a")
        circuit.add_latch("q", "a")
        circuit.not_("n", "a")
        assert circuit.driver_of("a") == "input"
        assert circuit.driver_of("q") == "latch"
        assert circuit.driver_of("n") == "gate"
        with pytest.raises(CircuitError):
            circuit.driver_of("zz")

    def test_convenience_builders(self):
        circuit = Circuit("demo")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.and_("g1", "a", "b")
        circuit.or_("g2", "a", "b")
        circuit.xor("g3", "a", "b")
        circuit.not_("g4", "a")
        assert circuit.num_gates == 4


class TestValidation:
    def test_undriven_gate_input(self):
        circuit = Circuit("demo")
        circuit.add_gate("g", "NOT", ("missing",))
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_undriven_latch_data(self):
        circuit = Circuit("demo")
        circuit.add_latch("q", "missing")
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_undriven_output(self):
        circuit = Circuit("demo")
        circuit.add_output("missing")
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_combinational_cycle_detected(self):
        circuit = Circuit("demo")
        circuit.add_gate("a", "NOT", ("b",))
        circuit.add_gate("b", "NOT", ("a",))
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_cycle_through_latch_is_fine(self):
        circuit = Circuit("demo")
        circuit.add_latch("q", "d")
        circuit.not_("d", "q")
        circuit.validate()


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        circuit = Circuit("demo")
        circuit.add_input("a")
        circuit.not_("n1", "a")
        circuit.not_("n2", "n1")
        circuit.and_("g", "n2", "n1")
        circuit.add_output("g")
        order = [g.output for g in circuit.topological_gates()]
        assert order.index("n1") < order.index("n2")
        assert order.index("n2") < order.index("g")

    def test_includes_dead_logic(self):
        circuit = Circuit("demo")
        circuit.add_input("a")
        circuit.not_("dead", "a")
        circuit.validate()
        assert [g.output for g in circuit.topological_gates()] == ["dead"]

    def test_cached_and_invalidated(self):
        circuit = Circuit("demo")
        circuit.add_input("a")
        circuit.not_("n", "a")
        first = circuit.topological_gates()
        assert circuit.topological_gates() is first
        circuit.not_("m", "n")
        assert len(circuit.topological_gates()) == 2

    def test_deep_chain_no_recursion_error(self):
        circuit = Circuit("deep")
        circuit.add_input("a")
        previous = "a"
        for i in range(5000):
            circuit.not_("n%d" % i, previous)
            previous = "n%d" % i
        circuit.add_output(previous)
        circuit.validate()
        assert len(circuit.topological_gates()) == 5000

    def test_repr(self):
        circuit = Circuit("demo")
        assert "demo" in repr(circuit)

"""Protocol model tests: MSI coherence and handshake chains."""

import pytest

from repro.circuits.protocols import handshake, msi_coherence
from repro.mc import check_invariant, state_predicate
from repro.sim import ConcreteSimulator, explicit_reachable


def msi_states(circuit, caches):
    """Decoded reachable states as per-cache (m, s) tuples."""
    reachable = explicit_reachable(circuit)
    nets = circuit.state_nets
    decoded = set()
    for state in reachable:
        values = dict(zip(nets, state))
        decoded.add(
            tuple(
                (values["m%d" % i], values["s%d" % i]) for i in range(caches)
            )
        )
    return decoded


class TestMSI:
    @pytest.mark.parametrize("caches", [2, 3])
    def test_modified_is_exclusive(self, caches):
        circuit = msi_coherence(caches)
        for state in msi_states(circuit, caches):
            modified = [i for i, (m, _s) in enumerate(state) if m]
            assert len(modified) <= 1
            for i in modified:
                assert not state[i][1]  # M and S never together
                for j, (m, s) in enumerate(state):
                    if j != i:
                        assert not m and not s  # all others Invalid

    def test_all_protocol_states_reachable(self):
        circuit = msi_coherence(2)
        states = msi_states(circuit, 2)
        # I-I (reset), S-I, I-S, S-S, M-I, I-M: all six legal states.
        assert len(states) == 6

    def test_write_invalidates(self):
        circuit = msi_coherence(2)
        sim = ConcreteSimulator(circuit)
        nets = circuit.state_nets
        # cache 0 reads (-> S), then cache 1 writes (-> M, 0 -> I)
        state = circuit.initial_state
        state = sim.step(
            state, {"rd0": True, "wr0": False, "rd1": False, "wr1": False}
        )
        values = dict(zip(nets, state))
        assert values["s0"] and not values["m0"]
        state = sim.step(
            state, {"rd0": False, "wr0": False, "rd1": False, "wr1": True}
        )
        values = dict(zip(nets, state))
        assert values["m1"] and not values["s1"]
        assert not values["s0"] and not values["m0"]

    def test_read_demotes_modified(self):
        circuit = msi_coherence(2)
        sim = ConcreteSimulator(circuit)
        nets = circuit.state_nets
        state = circuit.initial_state
        state = sim.step(
            state, {"rd0": False, "wr0": True, "rd1": False, "wr1": False}
        )
        state = sim.step(
            state, {"rd0": False, "wr0": False, "rd1": True, "wr1": False}
        )
        values = dict(zip(nets, state))
        assert values["s0"] and not values["m0"]  # demoted via write-back
        assert values["s1"] and not values["m1"]

    def test_priority_arbitration(self):
        circuit = msi_coherence(2)
        sim = ConcreteSimulator(circuit)
        nets = circuit.state_nets
        # simultaneous writes: cache 0 has priority
        state = sim.step(
            circuit.initial_state,
            {"rd0": False, "wr0": True, "rd1": False, "wr1": True},
        )
        values = dict(zip(nets, state))
        assert values["m0"] and not values["m1"]

    def test_symbolic_invariant_check(self):
        circuit = msi_coherence(2)

        def coherent(state):
            pairs = [(state["m%d" % i], state["s%d" % i]) for i in range(2)]
            modified = [i for i, (m, _s) in enumerate(pairs) if m]
            if len(modified) > 1:
                return False
            for i in modified:
                if pairs[i][1]:
                    return False
                for j, (m, s) in enumerate(pairs):
                    if j != i and (m or s):
                        return False
            return True

        result = check_invariant(circuit, state_predicate(coherent))
        assert result.holds


class TestHandshake:
    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_reachable_and_invariant(self, stages):
        circuit = handshake(stages)
        reachable = explicit_reachable(circuit)
        nets = circuit.state_nets
        # valid implies ack at the same stage was granted at some point;
        # structurally: valid<k> never without the stage having acked.
        for state in reachable:
            values = dict(zip(nets, state))
            for k in range(1, stages):
                # a later stage cannot be valid while the feeding stage
                # has never produced a valid transfer
                if values["valid%d" % k]:
                    assert values["valid%d" % (k - 1)]

    def test_drop_clears(self):
        circuit = handshake(2)
        sim = ConcreteSimulator(circuit)
        state = circuit.initial_state
        for _ in range(5):
            state = sim.step(state, {"req0": True, "drop": False})
        assert any(state)
        state = sim.step(state, {"req0": True, "drop": True})
        assert not any(state)

    def test_ack_follows_request(self):
        circuit = handshake(1)
        sim = ConcreteSimulator(circuit)
        state = circuit.initial_state
        state = sim.step(state, {"req0": True, "drop": False})
        values = dict(zip(circuit.state_nets, state))
        assert values["ack0"]
        state = sim.step(state, {"req0": False, "drop": False})
        values = dict(zip(circuit.state_nets, state))
        assert not values["ack0"]

"""Surrogate-suite tests: structure, determinism and scaled ground truth.

Full-size surrogates are validated by cross-engine agreement in the
reach tests; here the *generator families* behind them are checked
against explicit search at reduced scale, and the suite's structural
fingerprints are pinned.
"""

import pytest

from repro.circuits import generators as gen
from repro.circuits import surrogates
from repro.circuits.surrogates import _merge
from repro.sim import explicit_reachable


class TestSuiteShape:
    def test_all_five_benchmarks(self):
        assert list(surrogates.SUITE) == [
            "s1269s",
            "s1512s",
            "s3271s",
            "s3330s",
            "s4863s",
        ]

    def test_stats_fingerprint(self):
        expected = {
            "s1269s": (1, 16),
            "s1512s": (3, 14),
            "s3271s": (16, 32),
            "s3330s": (3, 18),
            "s4863s": (1, 30),
        }
        for name, factory in surrogates.SUITE.items():
            circuit = factory()
            stats = circuit.stats()
            assert (stats["inputs"], stats["latches"]) == expected[name], name

    def test_deterministic(self):
        for factory in surrogates.SUITE.values():
            a, b = factory(), factory()
            assert a.stats() == b.stats()
            assert list(a.latches) == list(b.latches)
            assert {g.output: (g.op, g.inputs) for g in a.gates.values()} == {
                g.output: (g.op, g.inputs) for g in b.gates.values()
            }

    def test_build_suite(self):
        circuits = surrogates.build_suite()
        assert len(circuits) == 5
        for circuit in circuits:
            circuit.validate()


class TestMerge:
    def test_merge_is_product_machine(self):
        merged = _merge("m", gen.counter(2), gen.johnson(2))
        reachable = explicit_reachable(merged)
        # counter reaches 4, johnson reaches 4; both can idle/hold only
        # if an input allows it -- counter can (en=0), johnson cannot,
        # so the product is synchronized; just check bounds and validity.
        assert 4 <= len(reachable) <= 16

    def test_merge_prefixes_disambiguate(self):
        merged = _merge("m", gen.counter(2), gen.counter(2))
        assert merged.num_latches == 4
        assert set(merged.inputs) == {"u0_en", "u1_en"}


class TestScaledGroundTruth:
    def test_s1269s_reaches_everything(self):
        # At full size (16 FFs, one input): every state reachable.
        circuit = surrogates.s1269s()
        assert len(explicit_reachable(circuit, max_states=1 << 17)) == 2**16

    def test_s1512s_reachable_count(self):
        circuit = surrogates.s1512s()
        # product of the 12-bit random FSM (1657) and the lock; pinned
        # for determinism.
        assert len(explicit_reachable(circuit, max_states=1 << 16)) == 6628

    def test_s3330s_reachable_count(self):
        circuit = surrogates.s3330s()
        assert len(explicit_reachable(circuit, max_states=1 << 16)) == 1934

    def test_coupled_pairs_scaled(self):
        # s3271s at reduced scale: pairs-equal times free counter.
        circuit = _merge("mini", gen.coupled_pairs(3), gen.counter(2))
        reachable = explicit_reachable(circuit)
        assert len(reachable) == (2**3) * (2**2)

    def test_shadow_scaled(self):
        # s4863s at reduced scale: reachable count = 2^n (main bank free,
        # shadows functionally determined).
        circuit = gen.shadow_datapath(4, shadows=2)
        assert len(explicit_reachable(circuit)) == 2**4

"""Shared test utilities: random Boolean expressions and brute-force oracles.

The expression helpers build the same function both as a BDD and as a
Python-evaluatable tree, so tests can compare against exhaustive truth
tables; the ``subsets`` helpers enumerate small power sets for the
exhaustive BFV semantics checks.
"""

from __future__ import annotations

import itertools
import os
import random
import signal
from typing import Callable, Dict, List, Sequence, Tuple

import pytest

from repro.bdd import BDD

Expr = tuple


def pytest_collection_modifyitems(items):
    """Every test is tier1 unless explicitly marked slow.

    CI runs ``-m tier1``; marking a test ``@pytest.mark.slow`` is the
    single opt-out needed to keep it off the commit gate.
    """
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(autouse=True)
def _hard_test_timeout():
    """Per-test wall-clock guard, driven by ``REPRO_TEST_TIMEOUT`` seconds.

    A SIGALRM-based stand-in for pytest-timeout (not a dependency of this
    repo): a hung test fails with a TimeoutError instead of stalling the
    whole CI job.  Off by default; enabled by ``scripts/ci.sh``.
    """
    try:
        seconds = int(os.environ.get("REPRO_TEST_TIMEOUT", "0"))
    except ValueError:
        seconds = 0
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            "test exceeded REPRO_TEST_TIMEOUT=%ds" % seconds
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def random_expr(rng: random.Random, nvars: int, depth: int) -> Expr:
    """A random expression tree over variables ``0..nvars-1``."""
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.1:
            return ("const", rng.random() < 0.5)
        return ("var", rng.randrange(nvars))
    op = rng.choice(["and", "or", "xor", "not"])
    if op == "not":
        return ("not", random_expr(rng, nvars, depth - 1))
    return (
        op,
        random_expr(rng, nvars, depth - 1),
        random_expr(rng, nvars, depth - 1),
    )


def eval_expr(expr: Expr, env: Dict[int, bool]) -> bool:
    """Evaluate an expression tree on a concrete assignment."""
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not eval_expr(expr[1], env)
    left = eval_expr(expr[1], env)
    right = eval_expr(expr[2], env)
    if tag == "and":
        return left and right
    if tag == "or":
        return left or right
    return left != right  # xor


def build_expr(bdd: BDD, expr: Expr) -> int:
    """Build the expression tree as a BDD node."""
    tag = expr[0]
    if tag == "var":
        return bdd.var(expr[1])
    if tag == "const":
        return bdd.true if expr[1] else bdd.false
    if tag == "not":
        return bdd.not_(build_expr(bdd, expr[1]))
    left = build_expr(bdd, expr[1])
    right = build_expr(bdd, expr[2])
    op = {"and": bdd.and_, "or": bdd.or_, "xor": bdd.xor}[tag]
    return op(left, right)


def truth_table(bdd: BDD, node: int, nvars: int) -> Tuple[bool, ...]:
    """Exhaustive truth table of a BDD node over the first nvars vars."""
    return tuple(
        bdd.evaluate(node, dict(enumerate(env)))
        for env in itertools.product([False, True], repeat=nvars)
    )


def expr_table(expr: Expr, nvars: int) -> Tuple[bool, ...]:
    """Exhaustive truth table of an expression tree."""
    return tuple(
        eval_expr(expr, dict(enumerate(env)))
        for env in itertools.product([False, True], repeat=nvars)
    )


def all_points(width: int) -> List[Tuple[bool, ...]]:
    """All bit-vectors of the given width."""
    return list(itertools.product([False, True], repeat=width))


def all_subsets(width: int, include_empty: bool = False):
    """Every subset of {0,1}^width as a frozenset of tuples."""
    points = all_points(width)
    start = 0 if include_empty else 1
    for mask in range(start, 1 << len(points)):
        yield frozenset(
            p for i, p in enumerate(points) if mask >> i & 1
        )


def chi_of(bdd: BDD, choice_vars: Sequence[int], points) -> int:
    """Characteristic function of a set of concrete points."""
    chi = bdd.false
    for point in points:
        chi = bdd.or_(
            chi, bdd.cube(dict(zip(choice_vars, point)))
        )
    return chi


@pytest.fixture
def bdd3() -> BDD:
    """A manager with three variables v0, v1, v2."""
    return BDD(["v0", "v1", "v2"])


@pytest.fixture
def bdd6() -> BDD:
    """A manager with six anonymous variables."""
    return BDD(["x%d" % i for i in range(6)])

"""Checkpoint round-trips: kill a run, resume it, get identical results.

For each of the six engines: run under an iteration budget (the
interrupt), resume from the checkpoint directory, and require the final
reached-set statistics to match an uninterrupted run exactly — the
harness acceptance criterion.  Corrupt/torn files must be skipped in
favor of the previous valid checkpoint.
"""

import glob
import os

import pytest

from repro.bdd import BDD
from repro.errors import CheckpointError
from repro.harness import AttemptSpec, Checkpointer, run_attempt
from repro.harness.faults import corrupt_file

#: For the saturation engines the interrupt tick is the *fire* count
#: (chained image steps), not the macro round — the budget interrupts
#: them mid-chain, which is exactly the resume path worth testing.
ENGINES = ("bfv", "conj", "cbm", "tr", "sat", "bfv-sat")
CIRCUIT = "traffic"  # 16 reachable states over 16 iterations: room to interrupt


def attempt(tmp_path=None, **kw):
    kw.setdefault("circuit", CIRCUIT)
    if tmp_path is not None:
        kw.setdefault("checkpoint_dir", str(tmp_path))
    return run_attempt(AttemptSpec(**kw))


def signature(result):
    return (result.num_states, result.iterations, result.reached_size)


class TestRoundTrips:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_interrupt_resume_matches_uninterrupted(self, engine, tmp_path):
        baseline = attempt(engine=engine)
        assert baseline.completed

        interrupted = attempt(tmp_path, engine=engine, max_iterations=3)
        assert not interrupted.completed
        assert interrupted.failure == "iterations"
        assert glob.glob(str(tmp_path / "*.rbdd"))

        resumed = attempt(tmp_path, engine=engine, resume=True)
        assert resumed.completed
        assert resumed.extra["resumed_from"] == 3
        assert signature(resumed) == signature(baseline)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_corrupted_newest_falls_back_to_previous(self, engine, tmp_path):
        baseline = attempt(engine=engine)
        attempt(tmp_path, engine=engine, max_iterations=3)
        files = sorted(glob.glob(str(tmp_path / "*.rbdd")))
        assert len(files) == 3
        corrupt_file(files[-1], mode="truncate")

        resumed = attempt(tmp_path, engine=engine, resume=True)
        assert resumed.completed
        assert resumed.extra["resumed_from"] == 2
        assert resumed.extra["checkpoints_skipped"] == [files[-1]]
        assert signature(resumed) == signature(baseline)

    def test_garbage_record_is_also_skipped(self, tmp_path):
        baseline = attempt()
        attempt(tmp_path, max_iterations=3)
        files = sorted(glob.glob(str(tmp_path / "*.rbdd")))
        corrupt_file(files[-1], mode="garbage")
        resumed = attempt(tmp_path, resume=True)
        assert resumed.completed
        assert resumed.extra["resumed_from"] == 2
        assert signature(resumed) == signature(baseline)

    def test_all_checkpoints_corrupt_starts_fresh(self, tmp_path):
        baseline = attempt()
        attempt(tmp_path, max_iterations=3)
        for path in glob.glob(str(tmp_path / "*.rbdd")):
            corrupt_file(path, mode="truncate")
        resumed = attempt(tmp_path, resume=True)
        assert resumed.completed
        assert "resumed_from" not in resumed.extra
        assert signature(resumed) == signature(baseline)

    def test_resume_after_completed_run_is_stable(self, tmp_path):
        baseline = attempt(tmp_path)
        assert baseline.completed
        resumed = attempt(tmp_path, resume=True)
        assert resumed.completed
        assert signature(resumed) == signature(baseline)


class TestQuarantine:
    """Corrupt checkpoints are renamed aside, not retried forever."""

    def restorer(self, tmp_path):
        return Checkpointer(
            str(tmp_path),
            engine="bfv",
            circuit=CIRCUIT,
            order="S1",
            resume=True,
        )

    def test_corrupt_newest_is_renamed_with_evidence(self, tmp_path, recwarn):
        attempt(tmp_path, max_iterations=3)
        files = sorted(glob.glob(str(tmp_path / "*.rbdd")))
        corrupt_file(files[-1], mode="truncate")
        ckpt = self.restorer(tmp_path)
        snapshot = ckpt.restore(BDD())
        assert snapshot is not None and snapshot.iteration == 2
        assert not os.path.exists(files[-1])
        assert os.path.exists(files[-1] + ".corrupt")
        assert ckpt.quarantined == [files[-1] + ".corrupt"]
        assert any(
            "quarantined corrupt checkpoint" in str(w.message)
            for w in recwarn.list
        )

    def test_quarantined_file_cannot_wedge_the_next_retry(
        self, tmp_path, recwarn
    ):
        attempt(tmp_path, max_iterations=3)
        files = sorted(glob.glob(str(tmp_path / "*.rbdd")))
        corrupt_file(files[-1], mode="garbage")
        first = attempt(tmp_path, resume=True)
        assert first.completed
        # The second resume sees only valid files: nothing skipped.
        ckpt = self.restorer(tmp_path)
        assert ckpt.restore(BDD()) is not None
        assert ckpt.skipped == []
        assert ckpt.quarantined == []

    def test_mislabeled_foreign_state_is_skipped_not_quarantined(
        self, tmp_path
    ):
        # A valid checkpoint of another flavor wearing this tag's file
        # name: provenance mismatch, not corruption — left in place.
        maker = Checkpointer(
            str(tmp_path), engine="tr", circuit=CIRCUIT, order="S1"
        )
        bdd = BDD(["a"])
        path = maker.save(bdd, 1, functions={"f": bdd.var("a")})
        disguised = os.path.join(
            str(tmp_path), os.path.basename(path).replace("-tr-", "-bfv-")
        )
        os.rename(path, disguised)
        ckpt = self.restorer(tmp_path)
        assert ckpt.restore(BDD()) is None
        assert os.path.exists(disguised)
        assert ckpt.quarantined == []
        assert ckpt.skipped and ckpt.skipped[0][0] == disguised


class TestCheckpointer:
    def make(self, tmp_path, **kw):
        kw.setdefault("engine", "bfv")
        kw.setdefault("circuit", "c")
        kw.setdefault("order", "S1")
        return Checkpointer(str(tmp_path), **kw)

    def save_one(self, ckpt, iteration, value=None):
        bdd = BDD(["a", "b"])
        f = bdd.and_(bdd.var("a"), bdd.var("b")) if value is None else value
        return ckpt.save(bdd, iteration, functions={"f": f})

    def test_interval_gates_saves(self, tmp_path):
        ckpt = self.make(tmp_path, interval=3)
        assert not ckpt.due(1) and not ckpt.due(2) and ckpt.due(3)
        bdd = BDD(["a"])
        assert not ckpt.maybe_save(bdd, 2, functions={"f": bdd.var("a")})
        assert ckpt.maybe_save(bdd, 3, functions={"f": bdd.var("a")})
        assert ckpt.saves == 1

    def test_prune_keeps_newest(self, tmp_path):
        ckpt = self.make(tmp_path, keep=2)
        for i in (1, 2, 3, 4):
            self.save_one(ckpt, i)
        iterations = [i for i, _ in ckpt.files()]
        assert iterations == [4, 3]

    def test_restore_off_by_default(self, tmp_path):
        ckpt = self.make(tmp_path)
        self.save_one(ckpt, 1)
        assert ckpt.restore(BDD()) is None

    def test_tag_mismatch_is_not_resumed(self, tmp_path):
        self.save_one(self.make(tmp_path), 1)
        other = self.make(tmp_path, engine="tr", resume=True)
        assert other.restore(BDD()) is None

    def test_meta_mismatch_raises(self, tmp_path):
        ckpt = self.make(tmp_path)
        path = self.save_one(ckpt, 1)
        # Same tag on disk, different expectation at load time.
        liar = self.make(tmp_path, order="S2")
        with pytest.raises(CheckpointError):
            liar.load(path, BDD())

    def test_loaded_snapshot_restores_function(self, tmp_path):
        ckpt = self.make(tmp_path, resume=True)
        self.save_one(ckpt, 7)
        bdd = BDD()
        snapshot = ckpt.restore(bdd)
        assert snapshot.iteration == 7
        f = snapshot.functions["f"]
        assert bdd.evaluate(f, {"a": True, "b": True})
        assert not bdd.evaluate(f, {"a": True, "b": False})

    def test_truncation_detected(self, tmp_path):
        ckpt = self.make(tmp_path, resume=True)
        path = self.save_one(ckpt, 1)
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-1])  # drop the end trailer
        with pytest.raises(CheckpointError, match="truncated"):
            ckpt.load(path, BDD())
        assert ckpt.restore(BDD()) is None
        assert ckpt.skipped and ckpt.skipped[0][0] == path

    def test_atomic_write_leaves_no_droppings(self, tmp_path):
        ckpt = self.make(tmp_path)
        self.save_one(ckpt, 1)
        leftovers = [
            name for name in os.listdir(str(tmp_path))
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestCounterCarryover:
    """Resumed runs report monotonic, not reset, manager statistics."""

    def make(self, tmp_path, **kw):
        kw.setdefault("engine", "bfv")
        kw.setdefault("circuit", "c")
        kw.setdefault("order", "S1")
        return Checkpointer(str(tmp_path), **kw)

    def test_save_embeds_counter_snapshot(self, tmp_path):
        ckpt = self.make(tmp_path, resume=True)
        bdd = BDD(["a", "b"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        ckpt.save(bdd, 1, functions={"f": f})
        snapshot = ckpt.restore(BDD(["a", "b"]))
        counters = snapshot.meta["counters"]
        assert counters["op_count"] == bdd.op_count > 0
        assert counters["gc_count"] == bdd.gc_count
        assert len(counters["cache"]) > 0

    def test_monitor_restore_makes_counters_monotonic(self, tmp_path):
        from repro.reach import RunMonitor

        ckpt = self.make(tmp_path, resume=True)
        first = BDD(["a", "b"])
        f = first.and_(first.var("a"), first.var("b"))
        for _ in range(5):
            first.or_(first.var("a"), first.var("b"))
        ckpt.save(first, 1, functions={"f": f})
        ops_before_crash = first.op_count

        # A fresh interpreter (fresh manager) resumes the run.
        second = BDD(["a", "b"])
        monitor = RunMonitor(second, None, ckpt)
        snapshot = monitor.restore()
        assert snapshot is not None
        assert second.op_count >= ops_before_crash
        baseline = second.op_count
        second.xor(second.var("a"), second.var("b"))
        assert second.op_count > baseline  # still counting forward

    def test_end_to_end_resume_reports_cumulative_ops(self, tmp_path):
        interrupted = attempt(tmp_path, max_iterations=3)
        assert not interrupted.completed
        interrupted_hits = interrupted.extra["cache"]["total"]["hits"]
        resumed = attempt(tmp_path, resume=True)
        assert resumed.completed
        # The resumed attempt's totals include the interrupted run's.
        assert resumed.extra["cache"]["total"]["hits"] >= interrupted_hits

"""CLI integration for the fault-tolerant harness paths."""

import glob
import json

import pytest

from repro.cli import main
from repro.harness import faults


class TestReachCheckpointing:
    def test_checkpoint_resume_reproduces_state_count(self, capsys, tmp_path):
        """ISSUE acceptance: interrupt s27, resume, identical answer."""
        assert main(["reach", "s27"]) == 0
        baseline = capsys.readouterr().out
        assert "6 reachable states" in baseline

        assert (
            main(
                [
                    "reach", "s27",
                    "--checkpoint-dir", str(tmp_path),
                    "--max-iterations", "1",
                    "--checkpoint-interval", "1",
                ]
            )
            == 0
        )
        interrupted = capsys.readouterr().out
        assert "did not complete" in interrupted and "I.O." in interrupted
        assert glob.glob(str(tmp_path / "*.rbdd"))

        assert (
            main(
                [
                    "reach", "s27",
                    "--checkpoint-dir", str(tmp_path),
                    "--resume",
                ]
            )
            == 0
        )
        resumed = capsys.readouterr().out
        assert "6 reachable states" in resumed
        assert "resumed from iteration 1" in resumed

    def test_resume_skips_corrupt_checkpoint(self, capsys, tmp_path):
        assert (
            main(
                [
                    "reach", "traffic",
                    "--checkpoint-dir", str(tmp_path),
                    "--max-iterations", "3",
                ]
            )
            == 0
        )
        capsys.readouterr()
        faults.corrupt_newest_checkpoint(str(tmp_path))
        assert (
            main(
                [
                    "reach", "traffic",
                    "--checkpoint-dir", str(tmp_path),
                    "--resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "16 reachable states" in out
        assert "resumed from iteration 2" in out


class TestReachFallback:
    def test_fallback_auto_recovers_from_timeout(self, capsys):
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 1}]
        )
        try:
            code = main(["reach", "traffic", "--fallback", "auto"])
        finally:
            plan.uninstall()
        assert code == 0
        out = capsys.readouterr().out
        assert "attempt bfv/S1 failed: T.O.; falling back" in out
        assert "16 reachable states" in out

    def test_journal_records_attempts(self, capsys, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        assert (
            main(["reach", "s27", "--journal", str(journal_path)]) == 0
        )
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
        ]
        assert len(records) == 1
        assert records[0]["circuit"] == "s27"
        assert records[0]["outcome"] == "completed"


class TestBatch:
    def test_smoke_two_builtins_no_isolate(self, capsys, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        code = main(
            [
                "batch", "traffic", "s27",
                "--no-isolate",
                "--journal", str(journal_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "traffic" in out and "s27" in out
        assert out.count("completed") >= 2
        records = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
        ]
        assert {r["circuit"] for r in records} == {"traffic", "s27"}

    def test_isolated_batch_default_path(self, capsys, tmp_path):
        # Default batch mode: each attempt in a supervised child process.
        code = main(
            [
                "batch", "traffic",
                "--checkpoint-dir", str(tmp_path),
                "--max-seconds", "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed" in out

    def test_unknown_circuit_fails_fast(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch", "traffic", "no_such_circuit_42"])

    def test_failure_sets_exit_code(self, capsys):
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 10**9}]
        )
        try:
            code = main(
                ["batch", "s27", "--no-isolate", "--fallback", "none"]
            )
        finally:
            plan.uninstall()
        assert code == 1
        out = capsys.readouterr().out
        assert "did not complete" in out

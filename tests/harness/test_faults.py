"""Fault-injection layer: deterministic failures, clean uninstall."""

import json
import signal
import subprocess
import sys

import pytest

from repro.bdd import BDD
from repro.bdd.manager import BDD as ManagerBDD
from repro.errors import HarnessError, ResourceLimitError
from repro.harness import AttemptSpec, run_attempt
from repro.harness import faults
from repro.reach.common import RunMonitor


class TestInjection:
    def test_timeout_at_iteration(self):
        result = run_attempt(
            AttemptSpec(
                circuit="traffic",
                faults=[{"kind": "timeout", "at_iteration": 2}],
            )
        )
        assert not result.completed
        assert result.failure == "time"
        assert result.extra["iteration"] == 2

    def test_alloc_failure_is_tagged_memory(self):
        result = run_attempt(
            AttemptSpec(
                circuit="traffic",
                faults=[{"kind": "alloc", "after_nodes": 200}],
            )
        )
        assert not result.completed
        assert result.failure == "memory"
        assert result.extra["iteration"] >= 0

    def test_hard_alloc_failure_escapes_the_engine(self):
        with pytest.raises(MemoryError):
            run_attempt(
                AttemptSpec(
                    circuit="traffic",
                    faults=[
                        {"kind": "alloc", "after_nodes": 200, "hard": True}
                    ],
                )
            )

    def test_fault_fires_once_by_default(self):
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 1}]
        )
        try:
            first = run_attempt(AttemptSpec(circuit="traffic"))
            second = run_attempt(AttemptSpec(circuit="traffic"))
        finally:
            plan.uninstall()
        assert first.failure == "time"
        assert second.completed

    def test_unknown_kind_rejected(self):
        with pytest.raises(HarnessError):
            faults.FaultPlan([{"kind": "meteor-strike"}])


class TestServeFaultKinds:
    """Serve-layer faults: drop the client, SIGKILL the server itself."""

    def test_client_disconnect_is_tagged_cancelled(self):
        result = run_attempt(
            AttemptSpec(
                circuit="traffic",
                faults=[{"kind": "client_disconnect", "at_iteration": 2}],
            )
        )
        assert not result.completed
        assert result.failure == "cancelled"
        assert result.extra["iteration"] == 2

    def test_server_crash_kills_the_pid_named_in_env(self, monkeypatch):
        victim = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"]
        )
        try:
            monkeypatch.setenv(faults.SERVE_PID_ENV_VAR, str(victim.pid))
            plan = faults.install([{"kind": "server_crash", "at_iteration": 1}])
            try:
                RunMonitor(BDD(), None).checkpoint((), 1)
            finally:
                plan.uninstall()
            assert victim.wait(timeout=10) == -signal.SIGKILL
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()


class TestLifecycle:
    def test_uninstall_restores_mk_and_hooks(self):
        original = ManagerBDD._mk
        plan = faults.install(
            [
                {"kind": "alloc", "after_nodes": 0},
                {"kind": "timeout", "at_iteration": 1},
            ]
        )
        assert ManagerBDD._mk is not original
        assert plan._on_iteration in RunMonitor.iteration_hooks
        plan.uninstall()
        assert ManagerBDD._mk is original
        assert plan._on_iteration not in RunMonitor.iteration_hooks

    def test_clear_disarms_stacked_plans(self):
        original = ManagerBDD._mk
        faults.install([{"kind": "alloc", "after_nodes": 10**9}])
        faults.install([{"kind": "timeout", "at_iteration": 10**9}])
        faults.clear()
        assert ManagerBDD._mk is original
        assert run_attempt(AttemptSpec(circuit="s27")).completed

    def test_install_from_env(self):
        environ = {
            faults.ENV_VAR: json.dumps(
                [{"kind": "timeout", "at_iteration": 1}]
            )
        }
        plan = faults.install_from_env(environ)
        try:
            result = run_attempt(AttemptSpec(circuit="s27"))
        finally:
            plan.uninstall()
        assert result.failure == "time"

    def test_install_from_env_absent_is_noop(self):
        assert faults.install_from_env({}) is None

    def test_direct_hook_raises_with_stats(self):
        plan = faults.install([{"kind": "timeout", "at_iteration": 5}])
        monitor = RunMonitor(BDD(), None)
        try:
            monitor.checkpoint((), 4)  # below threshold: no fire
            with pytest.raises(ResourceLimitError) as info:
                monitor.checkpoint((), 5)
        finally:
            plan.uninstall()
        assert info.value.kind == "time"
        assert info.value.iteration == 5


class TestCorruption:
    def test_truncate_strips_trailer(self, tmp_path):
        path = tmp_path / "file.txt"
        path.write_text("".join("line %d\n" % i for i in range(10)))
        faults.corrupt_file(str(path), mode="truncate")
        text = path.read_text()
        assert len(text.splitlines()) < 10
        assert not text.endswith("\n")  # torn mid-line

    def test_garbage_rewrites_a_record(self, tmp_path):
        path = tmp_path / "file.txt"
        path.write_text("".join("line %d\n" % i for i in range(10)))
        faults.corrupt_file(str(path), mode="garbage")
        assert "!!corrupted!!" in path.read_text()

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "file.txt"
        path.write_text("data\n")
        with pytest.raises(HarnessError):
            faults.corrupt_file(str(path), mode="subtle")

    def test_corrupt_newest_checkpoint_picks_newest(self, tmp_path):
        old = tmp_path / "ckpt-a-00000001.rbdd"
        new = tmp_path / "ckpt-a-00000002.rbdd"
        old.write_text("old\ncontent\n")
        new.write_text("new\ncontent\n")
        import os
        os.utime(str(old), (1, 1))
        hit = faults.corrupt_newest_checkpoint(str(tmp_path), mode="garbage")
        assert hit == str(new)
        assert "content" in old.read_text()

    def test_corrupt_newest_checkpoint_empty_dir(self, tmp_path):
        assert faults.corrupt_newest_checkpoint(str(tmp_path)) is None

"""RunJournal robustness: concurrent appends, torn/corrupt lines."""

import json
import threading

import pytest

from repro.harness.journal import RunJournal


class TestRoundTrip:
    def test_append_read_round_trip(self, tmp_path):
        journal = RunJournal(str(tmp_path / "runs.jsonl"))
        journal.append({"event": "attempt", "circuit": "s27", "attempt": 1})
        journal.append({"event": "attempt", "circuit": "s27", "attempt": 2})
        records = journal.read()
        assert [r["attempt"] for r in records] == [1, 2]
        assert all("wall" in r for r in records)

    def test_missing_file_reads_empty(self, tmp_path):
        journal = RunJournal(str(tmp_path / "absent.jsonl"))
        assert journal.read() == []
        assert journal.attempts() == []

    def test_attempts_filter(self, tmp_path):
        journal = RunJournal(str(tmp_path / "runs.jsonl"))
        journal.append({"event": "attempt", "circuit": "a"})
        journal.append({"event": "gc", "circuit": "a"})
        journal.append({"event": "attempt", "circuit": "b"})
        assert len(journal.attempts()) == 2
        assert len(journal.attempts(circuit="a")) == 1


class TestConcurrentAppends:
    def test_threaded_writers_all_land_intact(self, tmp_path):
        journal = RunJournal(str(tmp_path / "runs.jsonl"))
        writers, per_writer = 8, 25
        barrier = threading.Barrier(writers)

        def work(worker):
            barrier.wait()
            for i in range(per_writer):
                journal.append(
                    {"event": "attempt", "worker": worker, "seq": i}
                )

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        records = journal.read()
        assert len(records) == writers * per_writer
        seen = {(r["worker"], r["seq"]) for r in records}
        assert len(seen) == writers * per_writer  # no loss, no tearing
        # Per-writer order is preserved (appends are whole lines).
        for w in range(writers):
            seqs = [r["seq"] for r in records if r["worker"] == w]
            assert seqs == sorted(seqs)

    def test_reader_during_writes_sees_prefix(self, tmp_path):
        journal = RunJournal(str(tmp_path / "runs.jsonl"))
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set() and i < 200:
                journal.append({"event": "attempt", "seq": i})
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(20):
                records = journal.read()  # must never raise mid-flight
                seqs = [r["seq"] for r in records]
                assert seqs == sorted(seqs)
        finally:
            stop.set()
            thread.join()


class TestCorruptLines:
    def fill(self, tmp_path, lines):
        path = str(tmp_path / "runs.jsonl")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return RunJournal(path)

    def test_truncated_trailing_line_skipped_with_warning(self, tmp_path):
        journal = self.fill(
            tmp_path,
            [
                json.dumps({"event": "attempt", "seq": 1}),
                '{"event": "attempt", "seq": 2, "tru',  # torn write
            ],
        )
        with pytest.warns(RuntimeWarning, match="line 2"):
            records = journal.read()
        assert [r["seq"] for r in records] == [1]

    def test_corrupt_middle_line_skipped_rest_read(self, tmp_path):
        journal = self.fill(
            tmp_path,
            [
                json.dumps({"event": "attempt", "seq": 1}),
                "%% not json at all %%",
                json.dumps({"event": "attempt", "seq": 3}),
            ],
        )
        with pytest.warns(RuntimeWarning, match="line 2"):
            records = journal.read()
        assert [r["seq"] for r in records] == [1, 3]

    def test_non_dict_json_lines_ignored_silently(self, tmp_path):
        # Valid JSON that isn't an object is dropped without a warning
        # (it parsed fine; it's just not a record).
        journal = self.fill(
            tmp_path,
            ["[1, 2, 3]", json.dumps({"event": "attempt", "seq": 1})],
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = journal.read()
        assert [r["seq"] for r in records] == [1]

    def test_appends_after_corruption_still_readable(self, tmp_path):
        journal = self.fill(tmp_path, ['{"torn": tru'])
        journal.append({"event": "attempt", "seq": 2})
        with pytest.warns(RuntimeWarning):
            records = journal.read()
        assert [r["seq"] for r in records] == [2]

"""Fallback ladder: order-then-engine retries under a shared budget."""

import pytest

from repro.harness import (
    AttemptSpec,
    DEFAULT_ENGINE_LADDER,
    FallbackPolicy,
    RunJournal,
    run_with_fallback,
)
from repro.harness import faults


class TestLadder:
    def test_requested_config_first_then_orders_then_engines(self):
        policy = FallbackPolicy(max_attempts=100)
        rungs = policy.ladder("cbm", "S2")
        assert rungs[0] == ("cbm", "S2")
        assert rungs[1] == ("cbm", "S1")
        assert rungs[2:4] == [("bfv", "S2"), ("bfv", "S1")]
        engines = list(dict.fromkeys(e for e, _ in rungs))
        assert engines == ["cbm"] + [
            e for e in DEFAULT_ENGINE_LADDER if e != "cbm"
        ]

    def test_max_attempts_caps_the_ladder(self):
        assert len(FallbackPolicy(max_attempts=3).ladder("bfv", "S1")) == 3

    def test_single_attempt_policy_never_falls_back(self):
        assert FallbackPolicy(max_attempts=1).ladder("tr", "S1") == [
            ("tr", "S1")
        ]


class TestRunWithFallback:
    def test_first_rung_success_stops_the_ladder(self, tmp_path):
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        outcome, attempts = run_with_fallback(
            AttemptSpec(circuit="traffic"), journal=journal
        )
        assert outcome.completed
        assert len(attempts) == 1
        records = journal.read()
        assert len(records) == 1
        assert records[0]["outcome"] == "completed"
        assert records[0]["attempt"] == 1

    def test_failure_walks_to_next_order(self, tmp_path):
        # Installed around the whole ladder (not per-attempt) so max_hits
        # is shared: the first rung times out, the second completes.
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 1}]
        )
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        try:
            outcome, attempts = run_with_fallback(
                AttemptSpec(circuit="traffic"), journal=journal
            )
        finally:
            plan.uninstall()
        assert outcome.completed
        assert len(attempts) == 2
        assert attempts[0].failure == "time"
        assert (attempts[0].engine, attempts[0].order) == ("bfv", "S1")
        assert (attempts[1].engine, attempts[1].order) == ("bfv", "S2")
        records = journal.read()
        assert [r["outcome"] for r in records] == ["time", "completed"]
        assert [r["of"] for r in records] == [6, 6]

    def test_failure_walks_to_next_engine(self):
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 2}]
        )
        try:
            outcome, attempts = run_with_fallback(
                AttemptSpec(circuit="traffic"),
                policy=FallbackPolicy(orders=("S1", "S2")),
            )
        finally:
            plan.uninstall()
        assert outcome.completed
        second_engine = DEFAULT_ENGINE_LADDER[1]
        assert [(a.engine, a.order) for a in attempts] == [
            ("bfv", "S1"),
            ("bfv", "S2"),
            (second_engine, "S1"),
        ]

    def test_all_rungs_fail_returns_last_failure(self):
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 10**9}]
        )
        try:
            outcome, attempts = run_with_fallback(
                AttemptSpec(circuit="traffic"),
                policy=FallbackPolicy(max_attempts=3),
            )
        finally:
            plan.uninstall()
        assert outcome is not None
        assert not outcome.completed
        assert outcome.failure == "time"
        assert len(attempts) == 3

    def test_max_attempts_one_is_a_plain_run(self):
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 10**9}]
        )
        try:
            outcome, attempts = run_with_fallback(
                AttemptSpec(circuit="traffic"),
                policy=FallbackPolicy(max_attempts=1),
            )
        finally:
            plan.uninstall()
        assert len(attempts) == 1
        assert outcome.failure == "time"

    def test_budget_split_across_remaining_rungs(self, tmp_path):
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 1}]
        )
        try:
            outcome, attempts = run_with_fallback(
                AttemptSpec(circuit="traffic"),
                policy=FallbackPolicy(max_attempts=4),
                journal=journal,
                total_seconds=40.0,
            )
        finally:
            plan.uninstall()
        assert outcome.completed
        budgets = [r["budget_seconds"] for r in journal.read()]
        # First rung gets total/4; the retry splits what remains 3 ways.
        assert budgets[0] == pytest.approx(10.0, abs=0.5)
        assert budgets[1] == pytest.approx(40.0 / 3, abs=1.0)

    def test_backoff_sleeps_between_failures(self):
        naps = []
        plan = faults.install(
            [{"kind": "timeout", "at_iteration": 1, "max_hits": 2}]
        )
        try:
            run_with_fallback(
                AttemptSpec(circuit="traffic"),
                policy=FallbackPolicy(
                    backoff_seconds=0.25,
                    backoff_factor=2.0,
                    backoff_cap=0.4,
                ),
                sleep=naps.append,
            )
        finally:
            plan.uninstall()
        assert naps == [0.25, 0.4]


class TestJournal:
    def test_iteration_skips_torn_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(str(path))
        journal.append({"event": "attempt", "circuit": "a"})
        journal.append({"event": "attempt", "circuit": "b"})
        with open(str(path), "a") as handle:
            handle.write('{"event": "attempt", "circ')  # torn write
        with pytest.warns(RuntimeWarning, match="line 3"):
            records = journal.read()
        assert [r["circuit"] for r in records] == ["a", "b"]
        assert all("wall" in r for r in records)

    def test_attempts_filter_by_circuit(self, tmp_path):
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        journal.append({"event": "attempt", "circuit": "a"})
        journal.append({"event": "other", "circuit": "a"})
        journal.append({"event": "attempt", "circuit": "b"})
        assert len(journal.attempts()) == 2
        assert len(journal.attempts(circuit="a")) == 1

"""WorkerPool tests: futures, retry wiring, cancellation, shutdown."""

import time

import pytest

from repro.harness import RetryPolicy, WorkerPool
from repro.harness.journal import RunJournal
from repro.harness.scheduler import CancelToken
from repro.harness.worker import AttemptSpec


def spec_for(circuit="traffic", **kwargs):
    return AttemptSpec(circuit=circuit, engine="bfv", order="S1", **kwargs)


class TestSubmit:
    def test_attempt_completes_through_the_pool(self):
        with WorkerPool(2) as pool:
            future = pool.submit(spec_for(max_seconds=60.0))
            result = future.result(timeout=60)
            assert result.completed
            assert result.num_states == 16
            assert result.extra["supervisor"]["isolated"] is True
            stats = pool.stats()
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["running"] == 0
        assert stats["queued"] == 0

    def test_failures_come_back_as_results_not_exceptions(self):
        with WorkerPool(1, retry=RetryPolicy(retries=0)) as pool:
            future = pool.submit(
                spec_for(faults=[{"kind": "die", "at_iteration": 1}]),
            )
            result = future.result(timeout=60)
        assert not result.completed
        assert result.failure == "crash"

    def test_queueing_beyond_size(self):
        # Two slow attempts + pool of one: the second queues, both finish.
        faults = [{"kind": "hang", "at_iteration": 1, "seconds": 0.3}]
        with WorkerPool(1) as pool:
            first = pool.submit(spec_for(faults=faults, max_seconds=60.0))
            second = pool.submit(
                spec_for(circuit="s27", faults=faults, max_seconds=60.0)
            )
            assert first.result(timeout=60).completed
            assert second.result(timeout=60).completed

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestRetryWiring:
    def test_transient_crash_is_retried_and_journaled(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        policy = RetryPolicy(retries=1, backoff_seconds=0.01)
        with WorkerPool(
            1, retry=policy, journal=RunJournal(journal_path)
        ) as pool:
            future = pool.submit(
                spec_for(faults=[{"kind": "die", "at_iteration": 1}]),
            )
            result = future.result(timeout=60)
        assert result.failure == "crash"
        assert result.extra["retries_exhausted"] == 2
        events = [r["event"] for r in RunJournal(journal_path)]
        assert events.count("retry") == 1
        assert events.count("retry_exhausted") == 1

    def test_deterministic_failures_are_not_retried(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        with WorkerPool(1, journal=RunJournal(journal_path)) as pool:
            future = pool.submit(
                spec_for(faults=[{"kind": "timeout", "at_iteration": 1}]),
            )
            result = future.result(timeout=60)
        assert result.failure == "time"
        assert "retries_exhausted" not in result.extra
        assert RunJournal(journal_path).read() == []


class TestCancellation:
    def test_token_cancels_a_running_attempt(self):
        token = CancelToken()
        faults = [{"kind": "hang", "at_iteration": 1, "seconds": 60.0}]
        with WorkerPool(1) as pool:
            start = time.monotonic()
            future = pool.submit(
                spec_for(faults=faults, max_seconds=120.0), token=token
            )
            time.sleep(0.3)
            token.set("cancelled")
            result = future.result(timeout=60)
            elapsed = time.monotonic() - start
        assert result.failure == "cancelled"
        assert elapsed < 30.0

    def test_cancel_all_signals_every_outstanding_token(self):
        faults = [{"kind": "hang", "at_iteration": 1, "seconds": 60.0}]
        with WorkerPool(2) as pool:
            futures = [
                pool.submit(
                    spec_for(circuit=c, faults=faults, max_seconds=120.0)
                )
                for c in ("traffic", "s27")
            ]
            time.sleep(0.3)
            assert pool.cancel_all("cancelled") == 2
            results = [f.result(timeout=60) for f in futures]
        assert all(r.failure == "cancelled" for r in results)

    def test_budget_kill_via_watchdog(self):
        faults = [{"kind": "hang", "at_iteration": 1, "seconds": 60.0}]
        with WorkerPool(1) as pool:
            future = pool.submit(
                spec_for(faults=faults), budget_seconds=0.5
            )
            result = future.result(timeout=60)
        assert result.failure == "time"
        assert result.extra["supervisor"]["killed"] == "time"


class TestShutdown:
    def test_shutdown_rejects_new_work(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(spec_for())

    def test_shutdown_reaps_in_flight_children(self):
        faults = [{"kind": "hang", "at_iteration": 1, "seconds": 60.0}]
        pool = WorkerPool(1)
        future = pool.submit(spec_for(faults=faults, max_seconds=120.0))
        time.sleep(0.3)
        start = time.monotonic()
        pool.shutdown(wait=True)
        assert time.monotonic() - start < 30.0
        result = future.result(timeout=1)
        assert result.failure == "cancelled"


class TestRegistryMirror:
    def test_pool_counters_and_gauges(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        with WorkerPool(2, registry=registry) as pool:
            future = pool.submit(spec_for(max_seconds=60.0))
            assert future.result(timeout=60).completed
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["pool_size"] == 2
        assert snapshot["gauges"]["pool_running"] == 0
        assert snapshot["gauges"]["pool_queued"] == 0
        assert snapshot["counters"]["pool_submitted"] == 1
        assert snapshot["counters"]["pool_completed"] == 1

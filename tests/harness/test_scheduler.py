"""Parallel batch scheduler tests: determinism, budgets, containment.

The scheduler's contract is that parallelism is *invisible* in the
results: the merged report for any ``jobs`` level is byte-identical to
the sequential one, a global deadline converts outstanding work into
tagged failures instead of hanging the batch, and a crashing cell is
contained to its own job.  Fault injection (:mod:`repro.harness.faults`)
makes the failure cases deterministic.
"""

import json
import os
import random
import threading
import time

import pytest

from repro.circuits import bench, generators as gen
from repro.harness import (
    RunJournal,
    job_key,
    merge_journals,
    run_batch,
    run_scheduled_batch,
)
from repro.harness.scheduler import (
    DEFAULT_EXPECTED_SECONDS,
    BatchScheduler,
    expand_cells,
    expected_seconds,
    load_expected_seconds,
)
from repro.sim import explicit_reachable

SUITE = ["traffic", "s27"]


class TestExpandCells:
    def test_single_rung_without_fallback(self):
        cells = expand_cells(SUITE, engine="tr", order="S2", fallback=False)
        assert [(c.job, c.rung) for c in cells] == [(0, 0), (1, 0)]
        assert all(c.engine == "tr" and c.order == "S2" for c in cells)
        assert all(c.rungs == 1 for c in cells)

    def test_static_budget_slices(self):
        cells = expand_cells(["traffic"], fallback=True, max_seconds=60.0)
        assert len(cells) > 1
        # Even split across the ladder, identical for every rung: the
        # slice must not depend on scheduling order.
        slices = {c.budget_seconds for c in cells}
        assert slices == {60.0 / len(cells)}

    def test_budget_slice_floored_at_min_attempt(self):
        cells = expand_cells(["traffic"], fallback=True, max_seconds=0.5)
        # A tiny budget still grants min_attempt_seconds per rung (but
        # never more than the whole per-circuit budget).
        assert all(c.budget_seconds == 0.5 for c in cells)

    def test_job_keys_distinguish_shared_basenames(self):
        cells = expand_cells(
            ["a/s27.bench", "b/s27.bench"], fallback=False
        )
        assert cells[0].key != cells[1].key
        assert job_key(0, "a/s27.bench") != job_key(1, "b/s27.bench")

    def test_expected_seconds_baseline(self, tmp_path):
        path = tmp_path / "BENCH_reach.json"
        path.write_text(
            json.dumps({"cells": {"traffic/bfv": {"after_s": 2.5}}})
        )
        estimates = load_expected_seconds(str(path))
        [cell] = expand_cells(["traffic"], fallback=False)
        assert expected_seconds(cell, estimates) == 2.5

    def test_expected_seconds_missing_cell_degrades_gracefully(self):
        # The day a new engine lands it has no benchmark cell anywhere;
        # the estimate must stay finite and conservative, never raise.
        estimates = {
            "traffic/bfv": 2.5,
            "traffic/tr": 7.0,
            "s27/tr": 0.4,
        }
        # 1. circuit known, engine not: slowest engine on that circuit.
        [cell] = expand_cells(["traffic"], engine="sat", fallback=False)
        assert expected_seconds(cell, estimates) == 7.0
        # 2. engine known, circuit not: engine's slowest recorded time.
        [cell] = expand_cells(["counter8"], engine="tr", fallback=False)
        assert expected_seconds(cell, estimates) == 7.0
        # 3. no signal at all: the documented default, finite.
        [cell] = expand_cells(["counter8"], engine="sat", fallback=False)
        assert expected_seconds(cell, {}) == DEFAULT_EXPECTED_SECONDS
        assert expected_seconds(cell, estimates) == DEFAULT_EXPECTED_SECONDS

    def test_expected_seconds_for_backend_engines_without_baseline(self):
        # Regression: the bitset/zono backend engines are registered in
        # ENGINES but predate any BENCH_reach.json baseline, so every
        # one of their cells exercises the degradation chain.  A
        # KeyError here would take down batch scheduling for the whole
        # eight-engine matrix.
        estimates = {
            "traffic/bfv": 2.5,
            "traffic/tr": 7.0,
            "s27/tr": 0.4,
        }
        for engine in ("bitset", "zono"):
            # Same-circuit fallback: slowest recorded engine there.
            [cell] = expand_cells(["traffic"], engine=engine, fallback=False)
            assert expected_seconds(cell, estimates) == 7.0
            # No signal at all: the finite documented default.
            [cell] = expand_cells(["lfsr8"], engine=engine, fallback=False)
            assert expected_seconds(cell, estimates) == (
                DEFAULT_EXPECTED_SECONDS
            )
            assert expected_seconds(cell, {}) == DEFAULT_EXPECTED_SECONDS

    def test_expected_seconds_tolerates_bad_baseline(self, tmp_path):
        path = tmp_path / "BENCH_reach.json"
        path.write_text("{not json")
        assert load_expected_seconds(str(path)) == {}
        assert load_expected_seconds(str(tmp_path / "missing.json")) == {}


class TestDeterminism:
    def test_reports_byte_identical_across_pool_sizes(self):
        reports = {
            jobs: run_scheduled_batch(
                SUITE + ["counter8"],
                jobs=jobs,
                max_seconds=60.0,
                fallback=False,
                isolate=True,
            )
            for jobs in (1, 4)
        }
        assert reports[1].failures == 0
        assert reports[1].to_json() == reports[4].to_json()

    def test_fallback_ladder_deterministic_with_speculation(self):
        # A healthy circuit resolves at rung 0; with jobs=4 the later
        # rungs are speculated and must be discarded from the report,
        # leaving exactly the attempts a sequential ladder would log.
        reports = {
            jobs: run_scheduled_batch(
                ["traffic"],
                jobs=jobs,
                max_seconds=60.0,
                fallback=True,
                isolate=True,
            )
            for jobs in (1, 4)
        }
        assert reports[1].to_json() == reports[4].to_json()
        [job] = reports[4].jobs
        assert job.outcome is not None and job.outcome.completed
        assert len(job.attempts) == 1

    def test_poisoned_ladder_deterministic(self):
        # Every rung of the poisoned circuit fails the same way (an
        # injected engine-level timeout), so even an exhausted ladder
        # must serialize identically at any pool size.
        faults = {"traffic": [{"kind": "timeout", "at_iteration": 1}]}
        reports = {
            jobs: run_scheduled_batch(
                ["traffic", "s27"],
                jobs=jobs,
                max_seconds=30.0,
                fallback=True,
                isolate=True,
                cell_faults=faults,
            )
            for jobs in (1, 4)
        }
        assert reports[1].to_json() == reports[4].to_json()
        outcome, attempts = reports[4].outcomes()["traffic"]
        assert outcome is not None and not outcome.completed
        assert outcome.failure == "time"
        assert len(attempts) >= 2  # the whole ladder ran, every rung failed
        assert all(not attempt.completed for attempt in attempts)
        assert reports[4].outcomes()["s27"][0].completed


class TestGlobalBudgets:
    def test_deadline_cancels_running_and_skips_pending(self):
        faults = {"s27": [{"kind": "hang", "at_iteration": 1, "seconds": 60}]}
        start = time.monotonic()
        report = run_scheduled_batch(
            ["traffic", "s27"],
            jobs=2,
            fallback=False,
            isolate=True,
            total_seconds=1.5,
            cell_faults=faults,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 20.0  # the hang did not sink the batch
        outcomes = report.outcomes()
        assert outcomes["traffic"][0].completed
        hung, _ = outcomes["s27"]
        assert hung is not None and not hung.completed
        assert hung.failure == "time"
        assert report.failures == 1

    def test_deadline_skips_unstarted_cells(self):
        faults = {
            name: [{"kind": "hang", "at_iteration": 1, "seconds": 60}]
            for name in ("traffic", "s27", "counter8")
        }
        report = run_scheduled_batch(
            ["traffic", "s27", "counter8"],
            jobs=1,
            fallback=False,
            isolate=True,
            total_seconds=1.0,
            cell_faults=faults,
        )
        # Every job either got cancelled mid-run ("time") or never
        # started (skipped: outcome None); none completed.
        assert report.failures == 3
        states = {cell.state for cell in report.cells}
        assert "skipped" in states  # at least one cell never started

    def test_global_rss_budget_cancels_largest_child(self):
        # Any running child exceeds a zero-byte pool budget, so the
        # scheduler must cancel it with the memory failure code.
        faults = {"s27": [{"kind": "hang", "at_iteration": 1, "seconds": 60}]}
        report = run_scheduled_batch(
            ["s27"],
            jobs=1,
            fallback=False,
            isolate=True,
            total_rss_mb=0.0,
            cell_faults=faults,
        )
        [job] = report.jobs
        assert job.outcome is not None and not job.outcome.completed
        assert job.outcome.failure == "memory"


class TestCrashContainment:
    def test_poisoned_cell_does_not_sink_the_batch(self):
        faults = {"s27": [{"kind": "die", "at_iteration": 1}]}
        report = run_scheduled_batch(
            ["traffic", "s27", "counter8"],
            jobs=2,
            fallback=False,
            isolate=True,
            max_seconds=60.0,
            cell_faults=faults,
        )
        outcomes = report.outcomes()
        assert outcomes["traffic"][0].completed
        assert outcomes["counter8"][0].completed
        crashed, attempts = outcomes["s27"]
        assert crashed is not None and crashed.failure == "crash"
        assert len(attempts) == 1
        assert report.failures == 1


class TestJournalMerge:
    def test_merged_journal_is_input_ordered(self, tmp_path):
        journal_path = tmp_path / "batch.jsonl"
        report = run_scheduled_batch(
            ["traffic", "s27", "counter8"],
            jobs=2,
            fallback=False,
            isolate=True,
            max_seconds=60.0,
            journal=str(journal_path),
        )
        assert report.failures == 0
        records = RunJournal(str(journal_path)).read()
        assert len(records) == 3
        assert [(r["job"], r["rung"]) for r in records] == [
            (0, 0),
            (1, 0),
            (2, 0),
        ]
        assert {r["event"] for r in records} == {"attempt"}
        # The per-worker staging directory is gone after the merge.
        assert not os.path.exists(str(journal_path) + ".d")

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_merge_journals_sorts_and_skips_torn_lines(self, tmp_path):
        rng = random.Random(7)
        records = [
            {"event": "attempt", "job": j, "rung": r, "cell": "j%d-r%d" % (j, r)}
            for j in range(3)
            for r in range(2)
        ]
        shuffled = records[:]
        rng.shuffle(shuffled)
        sources = []
        for index in range(2):
            path = tmp_path / ("worker%d.jsonl" % index)
            with open(str(path), "w") as handle:
                for record in shuffled[index::2]:
                    handle.write(json.dumps(record) + "\n")
            sources.append(str(path))
        # Torn final line: the tolerant reader must skip it.
        with open(sources[0], "a") as handle:
            handle.write('{"event": "attempt", "job": 9')
        dest = tmp_path / "merged.jsonl"
        written = merge_journals(sources, str(dest))
        assert written == len(records)
        merged = RunJournal(str(dest)).read()
        assert [(r["job"], r["rung"]) for r in merged] == [
            (j, r) for j in range(3) for r in range(2)
        ]

    def test_records_without_job_fields_keep_source_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = RunJournal(str(path))
        journal.append({"event": "start"})
        journal.append({"event": "attempt", "job": 0, "rung": 0})
        journal.append({"event": "stop"})
        dest = tmp_path / "merged.jsonl"
        merge_journals([str(path)], str(dest))
        merged = RunJournal(str(dest)).read()
        # Cell records lead (input order), one-off events follow in
        # their original order.
        assert [r["event"] for r in merged] == ["attempt", "start", "stop"]


class TestNamespacing:
    def _dump_two_circuits_sharing_a_basename(self, tmp_path):
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        first = a_dir / "same.bench"
        second = b_dir / "same.bench"
        # Two genuinely different circuits (4 vs 8 reachable states),
        # both iterating long enough to write checkpoints.
        bench.dump(gen.counter(2), str(first))
        bench.dump(gen.counter(3), str(second))
        return str(first), str(second)

    def test_scheduler_checkpoints_do_not_collide(self, tmp_path):
        first, second = self._dump_two_circuits_sharing_a_basename(tmp_path)
        checkpoint_dir = tmp_path / "ckpt"
        report = run_scheduled_batch(
            [first, second],
            jobs=2,
            fallback=False,
            isolate=True,
            max_seconds=60.0,
            checkpoint_dir=str(checkpoint_dir),
        )
        assert report.failures == 0
        namespaces = sorted(os.listdir(str(checkpoint_dir)))
        assert namespaces == [job_key(0, first), job_key(1, second)]
        assert all(
            os.listdir(os.path.join(str(checkpoint_dir), n))
            for n in namespaces
        )
        # Each job reports its own circuit's state count — proof that
        # neither run resumed the other's checkpoint.
        for path, job in zip([first, second], report.jobs):
            truth = explicit_reachable(bench.load(path))
            assert job.outcome.num_states == len(truth), path

    def test_sequential_run_batch_namespaces_too(self, tmp_path):
        # The legacy sequential path had the collision bug; it now uses
        # the same per-job namespace.
        first, second = self._dump_two_circuits_sharing_a_basename(tmp_path)
        checkpoint_dir = tmp_path / "ckpt"
        trace_dir = tmp_path / "traces"
        results = run_batch(
            [first, second],
            fallback=False,
            isolate=False,
            max_seconds=60.0,
            checkpoint_dir=str(checkpoint_dir),
            trace_dir=str(trace_dir),
        )
        assert all(
            outcome is not None and outcome.completed
            for outcome, _ in results.values()
        )
        for root in (checkpoint_dir, trace_dir):
            assert sorted(os.listdir(str(root))) == [
                job_key(0, first),
                job_key(1, second),
            ]

    def test_trace_files_lifted_into_flat_directory(self, tmp_path):
        trace_dir = tmp_path / "traces"
        report = run_scheduled_batch(
            ["traffic", "s27"],
            jobs=2,
            fallback=False,
            isolate=True,
            max_seconds=60.0,
            trace_dir=str(trace_dir),
        )
        assert report.failures == 0
        names = sorted(os.listdir(str(trace_dir)))
        traces = [n for n in names if n.startswith("trace-job")]
        assert len(traces) == 2
        assert all(n.endswith(".jsonl") for n in traces)
        # No per-job subdirectories survive the merge, and the ladder
        # journal sits alongside the traces.
        assert not any(
            os.path.isdir(os.path.join(str(trace_dir), n)) for n in names
        )
        assert "attempts.jsonl" in names


class TestBatchReportShape:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            BatchScheduler(["traffic"], jobs=0)

    def test_merged_schema(self):
        report = run_scheduled_batch(
            ["traffic"],
            jobs=1,
            fallback=False,
            isolate=False,
            max_seconds=60.0,
        )
        merged = report.merged()
        assert merged["schema_version"] == 1
        assert merged["engine"] == "bfv"
        assert merged["fallback"] is False
        [job] = merged["jobs"]
        assert job["circuit"] == "traffic"
        assert job["outcome"]["completed"] is True
        # Determinism-hostile fields must stay out of the merged report.
        for attempt in [job["outcome"]] + job["attempts"]:
            assert "seconds" not in attempt
            assert "rss" not in attempt
        assert report.to_json().endswith("\n")

    def test_outcomes_matches_legacy_run_batch_shape(self):
        report = run_scheduled_batch(
            ["traffic", "s27"],
            jobs=1,
            fallback=False,
            isolate=False,
            max_seconds=60.0,
        )
        outcomes = report.outcomes()
        assert set(outcomes) == {"traffic", "s27"}
        for outcome, attempts in outcomes.values():
            assert outcome is not None and outcome.completed
            assert attempts and attempts[-1] is outcome


class TestCancellationRaces:
    """Cancellation delivered at the two nastiest moments.

    A cancel racing a checkpoint *write* (via a ``during: checkpoint``
    fault) and a cancel racing an ordinary iteration must both leave
    (a) a journaled ``cancelled`` attempt and (b) an intact, resumable
    checkpoint directory — the invariant the serve layer's
    abandoned-request path builds its cache on.
    """

    def _cancel_mid_run(self, tmp_path, faults, wait_for_iteration):
        """Run one wedged cell, cancel it mid-flight, return evidence."""
        from repro.harness.worker import AttemptSpec, run_attempt

        journal_path = str(tmp_path / "attempts.jsonl")
        ckpt_root = str(tmp_path / "ckpt")
        scheduler = BatchScheduler(
            ["traffic"],
            jobs=1,
            fallback=False,
            isolate=True,
            max_seconds=120.0,
            checkpoint_dir=ckpt_root,
            journal=journal_path,
            cell_faults={"traffic": faults},
        )
        done = {}
        thread = threading.Thread(
            target=lambda: done.setdefault("report", scheduler.run()),
            daemon=True,
        )
        thread.start()
        job_dir = os.path.join(ckpt_root, job_key(0, "traffic"))
        marker = "-%08d.rbdd" % wait_for_iteration
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                if any(n.endswith(marker) for n in os.listdir(job_dir)):
                    break
            except OSError:
                pass
            time.sleep(0.02)
        else:
            raise AssertionError(
                "checkpoint %s never appeared in %s" % (marker, job_dir)
            )
        time.sleep(0.3)  # let the child reach the injected hang
        with scheduler._cond:
            tokens = list(scheduler._tokens.values())
        assert tokens, "no running cell to cancel"
        for token in tokens:
            token.set("cancelled")
        thread.join(60.0)
        assert not thread.is_alive(), "scheduler wedged after cancel"

        report = done["report"]
        outcome, attempts = report.outcomes()["traffic"]
        assert outcome is not None and not outcome.completed
        assert outcome.failure == "cancelled"
        assert attempts[-1].failure == "cancelled"

        records = RunJournal(journal_path).attempts("traffic")
        assert records and records[-1]["outcome"] == "cancelled"

        names = sorted(os.listdir(job_dir))
        assert not any(name.endswith(".tmp") for name in names), names
        snapshots = [n for n in names if n.endswith(".rbdd")]
        assert snapshots, "cancel destroyed every checkpoint"

        resumed = run_attempt(
            AttemptSpec(
                circuit="traffic",
                checkpoint_dir=job_dir,
                resume=True,
                max_seconds=60.0,
            )
        )
        assert resumed.completed
        assert resumed.num_states == 16
        return resumed, snapshots

    def test_cancel_mid_iteration_leaves_resumable_state(self, tmp_path):
        # Hang fires from the ordinary iteration hook at iteration 2,
        # after snapshot 2 hit the disk; the cancel kills the child
        # inside the hang.  Resume continues from iteration 2 exactly.
        resumed, _ = self._cancel_mid_run(
            tmp_path,
            faults=[{"kind": "hang", "at_iteration": 2, "seconds": 60.0}],
            wait_for_iteration=2,
        )
        assert resumed.extra["resumed_from"] == 2

    def test_cancel_mid_checkpoint_write_leaves_prior_snapshot(
        self, tmp_path
    ):
        # Hang fires *inside* Checkpointer.save for iteration 2 — after
        # the payload is built, before the atomic write — so the kill
        # lands mid-checkpoint-write.  Snapshot 2 must not exist (torn
        # or otherwise) and resume continues from snapshot 1.
        resumed, snapshots = self._cancel_mid_run(
            tmp_path,
            faults=[
                {
                    "kind": "hang",
                    "during": "checkpoint",
                    "at_iteration": 2,
                    "seconds": 60.0,
                }
            ],
            wait_for_iteration=1,
        )
        assert resumed.extra["resumed_from"] == 1
        assert not any(s.endswith("-%08d.rbdd" % 2) for s in snapshots)


class TestWorkerGauges:
    def test_registry_mirrors_worker_occupancy(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        report = run_scheduled_batch(
            SUITE, jobs=2, isolate=False, fallback=False,
            registry=registry,
        )
        assert all(
            job.outcome is not None and job.outcome.completed
            for job in report.jobs
        )
        snapshot = registry.snapshot()
        gauges = snapshot["gauges"]
        # Every worker parked idle with no job once the batch drained.
        for worker in range(2):
            assert gauges['worker_state{worker="%d"}' % worker] == "idle"
            assert gauges['worker_job{worker="%d"}' % worker] == ""
            assert gauges['worker_rung{worker="%d"}' % worker] == -1
        assert gauges["workers_busy"] == 0

    def test_worker_state_journal_feeds_top(self, tmp_path):
        # The per-worker occupancy sidecars exist only while the batch
        # runs (a live `repro top` audience); afterwards the trace dir
        # is back to its flat contract.  Gauges carry the same story.
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        trace_dir = str(tmp_path / "traces")
        run_scheduled_batch(
            SUITE, jobs=2, isolate=False, fallback=False,
            trace_dir=trace_dir, registry=registry,
        )
        assert not os.path.isdir(os.path.join(trace_dir, ".workers"))
        gauges = registry.snapshot()["gauges"]
        busy_jobs = {
            gauges['worker_job{worker="%d"}' % worker]
            for worker in range(2)
        }
        assert busy_jobs == {""}  # both idle after the run

"""Process isolation: child crashes never take the parent down."""

import glob
import json
import os
import signal

import pytest

from repro.harness import AttemptSpec, Supervisor, rss_bytes, run_attempt


@pytest.fixture(scope="module")
def supervisor():
    return Supervisor(poll_interval=0.02)


class TestIsolation:
    def test_success_round_trips_the_result(self, supervisor):
        result = supervisor.run(AttemptSpec(circuit="traffic"))
        assert result.completed
        assert result.num_states == 16
        info = result.extra["supervisor"]
        assert info["isolated"] is True
        assert info["exitcode"] == 0

    def test_sigkilled_child_becomes_crash(self, supervisor):
        result = supervisor.run(
            AttemptSpec(
                circuit="traffic",
                faults=[{"kind": "die", "at_iteration": 2}],
            )
        )
        assert not result.completed
        assert result.failure == "crash"
        assert result.extra["supervisor"]["signal"] == signal.SIGKILL

    def test_hard_alloc_crash_is_absorbed(self, supervisor):
        result = supervisor.run(
            AttemptSpec(
                circuit="traffic",
                faults=[{"kind": "alloc", "after_nodes": 100, "hard": True}],
            )
        )
        assert not result.completed
        assert result.failure == "crash"
        assert result.extra["supervisor"]["exitcode"] not in (0, None)

    def test_hung_child_hits_the_watchdog(self, supervisor):
        result = supervisor.run(
            AttemptSpec(
                circuit="traffic",
                faults=[{"kind": "hang", "at_iteration": 1, "seconds": 60}],
            ),
            budget_seconds=0.5,
        )
        assert not result.completed
        assert result.failure == "time"
        assert result.extra["supervisor"]["killed"] == "time"
        assert result.seconds < 30

    def test_rss_guard_kills_fat_child(self, supervisor):
        result = supervisor.run(
            AttemptSpec(circuit="traffic"), max_rss_bytes=1024
        )
        assert not result.completed
        assert result.failure == "memory"
        assert result.extra["supervisor"]["killed"] == "memory"

    def test_rss_bytes_reads_own_process(self):
        rss = rss_bytes(os.getpid())
        if rss is None:
            pytest.skip("/proc VmRSS unavailable on this platform")
        assert rss > 1024 * 1024

    def test_soft_failures_round_trip_extra(self, supervisor):
        result = supervisor.run(
            AttemptSpec(
                circuit="traffic",
                faults=[{"kind": "timeout", "at_iteration": 2}],
            )
        )
        assert not result.completed
        assert result.failure == "time"
        assert result.extra["iteration"] == 2
        assert result.extra["supervisor"]["exitcode"] == 0


class TestCrashResume:
    """The ISSUE acceptance scenario: SIGKILL mid-run, resume, same answer."""

    def test_killed_run_resumes_to_exact_state_count(
        self, supervisor, tmp_path
    ):
        baseline = run_attempt(AttemptSpec(circuit="traffic"))
        assert baseline.completed

        crashed = supervisor.run(
            AttemptSpec(
                circuit="traffic",
                checkpoint_dir=str(tmp_path),
                faults=[{"kind": "die", "at_iteration": 3}],
            )
        )
        assert not crashed.completed
        assert crashed.failure == "crash"
        # The child checkpointed before dying; files survived the SIGKILL.
        assert glob.glob(str(tmp_path / "*.rbdd"))

        resumed = supervisor.run(
            AttemptSpec(
                circuit="traffic",
                checkpoint_dir=str(tmp_path),
                resume=True,
            )
        )
        assert resumed.completed
        assert resumed.extra["resumed_from"] == 3
        assert resumed.num_states == baseline.num_states
        assert resumed.iterations == baseline.iterations
        assert resumed.reached_size == baseline.reached_size

    def test_fault_env_reaches_the_child(self, supervisor, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            json.dumps([{"kind": "timeout", "at_iteration": 1}]),
        )
        result = supervisor.run(AttemptSpec(circuit="s27"))
        assert not result.completed
        assert result.failure == "time"

"""Bounded model checking tests, incl. agreement with the unbounded checker."""

import pytest

from repro.circuits import generators as gen
from repro.errors import ReproError
from repro.mc import (
    bounded_check,
    check_invariant,
    never_all,
    output_never_high,
    state_predicate,
)
from repro.sim import ConcreteSimulator


class TestBoundedResults:
    def test_holds_within_bound(self):
        circuit = gen.counter(4)
        # counting to 15 takes 15 steps; depth 10 sees no violation
        result = bounded_check(circuit, never_all(circuit.state_nets), 10)
        assert result.holds_up_to_depth
        assert result.violation_depth is None

    def test_violation_at_exact_depth(self):
        circuit = gen.counter(3)
        result = bounded_check(circuit, never_all(circuit.state_nets), 10)
        assert not result.holds_up_to_depth
        assert result.violation_depth == 7  # shortest path to 111
        assert len(result.counterexample) == 7

    def test_depth_zero_checks_initial_state(self):
        circuit = gen.counter(2)
        def some_bit(state):
            return any(state.values())

        result = bounded_check(circuit, state_predicate(some_bit), 0)
        assert not result.holds_up_to_depth
        assert result.violation_depth == 0
        assert len(result.counterexample) == 0

    def test_negative_depth_rejected(self):
        with pytest.raises(ReproError):
            bounded_check(gen.counter(2), never_all(["s0"]), -1)

    def test_trace_ends_in_violating_state(self):
        circuit = gen.shift_register(4)
        pattern = (True, True, False, True)

        def not_pattern(state):
            return tuple(state["s%d" % i] for i in range(4)) != pattern

        result = bounded_check(circuit, state_predicate(not_pattern), 8)
        assert not result.holds_up_to_depth
        final = result.counterexample.states[-1]
        assert tuple(final["s%d" % i] for i in range(4)) == pattern

    def test_trace_replays(self):
        circuit = gen.counter(3)
        result = bounded_check(circuit, never_all(circuit.state_nets), 8)
        simulator = ConcreteSimulator(circuit)
        state = circuit.initial_state
        for step in result.counterexample.inputs:
            state = simulator.step(state, step)
        assert all(state)


class TestOutputProperties:
    def test_fifo_full_depth(self):
        circuit = gen.fifo_controller(1)
        result = bounded_check(circuit, output_never_high("full"), 6)
        assert not result.holds_up_to_depth
        # depth-2 FIFO needs 2 pushes; 'full' raised while count==2...
        # shortest: 2 pushes then the output reads full -> depth 2.
        assert result.violation_depth == 2

    def test_unknown_output(self):
        with pytest.raises(ReproError):
            bounded_check(gen.counter(2), output_never_high("zz"), 2)


class TestAgreementWithUnbounded:
    @pytest.mark.parametrize(
        "factory,builder",
        [
            (lambda: gen.counter(3), lambda c: never_all(c.state_nets)),
            (
                lambda: gen.mod_counter(3, 5),
                lambda c: output_never_high("wrap"),
            ),
            (
                lambda: gen.combination_lock([True, False, True]),
                lambda c: output_never_high("at_end"),
            ),
        ],
        ids=["counter", "modwrap", "lock"],
    )
    def test_same_shortest_depth(self, factory, builder):
        circuit = factory()
        prop = builder(circuit)
        unbounded = check_invariant(circuit, prop)
        assert not unbounded.holds
        shortest = len(unbounded.counterexample)
        bounded = bounded_check(circuit, prop, shortest + 3)
        assert not bounded.holds_up_to_depth
        assert bounded.violation_depth == shortest
        # and just below the bound, BMC sees nothing
        clean = bounded_check(circuit, prop, shortest - 1)
        assert clean.holds_up_to_depth

    def test_holding_invariant_agrees(self):
        circuit = gen.token_ring(4)
        from repro.mc import exactly_one

        prop = exactly_one(circuit.state_nets)
        assert check_invariant(circuit, prop).holds
        assert bounded_check(circuit, prop, 10).holds_up_to_depth

"""Model-checker tests: holding invariants, violations, trace validity."""

import pytest

from repro.circuits import generators as gen
from repro.mc import (
    check_invariant,
    exactly_one,
    never_all,
    output_never_high,
    state_predicate,
)
from repro.mc.properties import implication
from repro.reach import ReachLimits
from repro.sim import ConcreteSimulator, explicit_reachable


class TestHoldingInvariants:
    def test_token_ring_one_hot(self):
        circuit = gen.token_ring(5)
        result = check_invariant(
            circuit, exactly_one(circuit.state_nets), count_states=True
        )
        assert result.holds
        assert result.counterexample is None
        assert result.num_states == 5

    def test_johnson_never_alternating(self):
        circuit = gen.johnson(4)

        def no_101_prefix(state):
            return not (state["s0"] and not state["s1"] and state["s2"])

        result = check_invariant(circuit, state_predicate(no_101_prefix))
        assert result.holds

    def test_mod_counter_bound(self):
        circuit = gen.mod_counter(4, 10)

        def below_ten(state):
            value = sum(state["s%d" % i] << i for i in range(4))
            return value < 10

        result = check_invariant(circuit, state_predicate(below_ten))
        assert result.holds

    def test_vacuous_property(self):
        circuit = gen.counter(3)
        result = check_invariant(
            circuit, state_predicate(lambda state: True)
        )
        assert result.holds
        assert result.iterations == 0


class TestViolations:
    def test_counter_reaches_max(self):
        circuit = gen.counter(3)
        result = check_invariant(circuit, never_all(circuit.state_nets))
        assert not result.holds
        trace = result.counterexample
        assert trace is not None
        # shortest path to 111 is 7 increments
        assert len(trace) == 7
        assert all(trace.states[-1][net] for net in circuit.state_nets)

    def test_trace_replays_on_simulator(self):
        circuit = gen.shift_register(4)
        # claim: the register never holds 1010
        def not_1010(state):
            pattern = [True, False, True, False]
            return [state["s%d" % i] for i in range(4)] != pattern

        result = check_invariant(circuit, state_predicate(not_1010))
        assert not result.holds
        trace = result.counterexample
        simulator = ConcreteSimulator(circuit)
        state = circuit.initial_state
        for step_inputs in trace.inputs:
            state = simulator.step(state, step_inputs)
        assert state == (True, False, True, False)

    def test_violation_in_initial_state(self):
        circuit = gen.counter(2)
        # the all-zero initial state itself violates "some bit is high"
        def some_bit(state):
            return any(state.values())

        result = check_invariant(circuit, state_predicate(some_bit))
        assert not result.holds
        assert len(result.counterexample) == 0

    def test_trace_disabled(self):
        circuit = gen.counter(2)
        result = check_invariant(
            circuit, never_all(circuit.state_nets), produce_trace=False
        )
        assert not result.holds
        assert result.counterexample is None


class TestOutputProperties:
    def test_fifo_never_full_is_false(self):
        circuit = gen.fifo_controller(1)
        result = check_invariant(circuit, output_never_high("full"))
        assert not result.holds
        # replay: final state must allow raising 'full'
        trace = result.counterexample
        assert trace is not None

    def test_mod_counter_wrap_reached(self):
        circuit = gen.mod_counter(3, 5)
        result = check_invariant(circuit, output_never_high("wrap"))
        assert not result.holds
        assert len(result.counterexample) == 4  # state 4 == modulus-1

    def test_unknown_output_rejected(self):
        from repro.errors import ReproError

        circuit = gen.counter(2)
        with pytest.raises(ReproError):
            check_invariant(circuit, output_never_high("nope"))

    def test_lock_never_opens_without_code(self):
        sequence = [True, False, True]
        circuit = gen.combination_lock(sequence)
        result = check_invariant(circuit, output_never_high("at_end"))
        assert not result.holds  # the right code opens it
        trace = result.counterexample
        assert [step["key"] for step in trace.inputs] == sequence


class TestImplicationProperty:
    def test_shadow_bank_dependency(self):
        circuit = gen.shadow_datapath(2, shadows=1)
        # r1_0 == r0_0 XOR r0_1 in every reachable state; in particular
        # r0_0 AND r0_1 -> NOT r1_0, phrased per implication on a
        # derived bit is awkward, so check via predicate instead:
        def dependency(state):
            return state["r1_0"] == (state["r0_0"] != state["r0_1"])

        result = check_invariant(circuit, state_predicate(dependency))
        assert result.holds

    def test_implication_builder(self):
        circuit = gen.johnson(3)
        # In a Johnson ring from 000: s2 high implies s1 was high
        # (states go 000,100,110,111,011,001): s2 -> s1 fails at 001.
        result = check_invariant(circuit, implication("s2", "s1"))
        assert not result.holds


class TestLimits:
    def test_budget_reports_incomplete(self):
        circuit = gen.counter(6)
        result = check_invariant(
            circuit,
            never_all(circuit.state_nets),
            limits=ReachLimits(max_seconds=0.0),
        )
        assert not result.completed
        assert result.failure == "time"


class TestAgainstExplicitOracle:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gen.token_ring(4),
            lambda: gen.lfsr(4),
            lambda: gen.fifo_controller(1),
            lambda: gen.random_control(6, seed=9),
        ],
        ids=["ring", "lfsr", "fifo", "rctl"],
    )
    def test_arbitrary_predicates(self, factory):
        circuit = factory()
        reachable = explicit_reachable(circuit)
        nets = circuit.state_nets

        def forbid_some(state):
            # forbid a specific reachable state: must be violated
            target = sorted(reachable)[len(reachable) // 2]
            return tuple(state[n] for n in nets) != target

        result = check_invariant(circuit, state_predicate(forbid_some))
        assert not result.holds

        def forbid_none(state):
            return tuple(state[n] for n in nets) in reachable or True

        assert check_invariant(circuit, state_predicate(forbid_none)).holds

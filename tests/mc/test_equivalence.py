"""Sequential equivalence checking tests."""

import pytest

from repro.circuits import generators as gen
from repro.circuits.netlist import Circuit
from repro.mc import check_equivalence, distinguishing_inputs
from repro.reach import ReachLimits
from repro.sim import ConcreteSimulator


def mod_counter_variant(n):
    """A counter built differently (NAND-style carries): same behaviour."""
    circuit = Circuit("counter%d_v2" % n)
    circuit.add_input("en")
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    carry = "en"
    for i in range(n):
        bit = "s%d" % i
        circuit.xor("ns%d" % i, bit, carry)
        if i < n - 1:
            # AND via double NAND: structurally different, same function.
            circuit.add_gate("nn%d" % i, "NAND", (carry, bit))
            circuit.not_("cy%d" % i, "nn%d" % i)
            carry = "cy%d" % i
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


def buggy_counter(n):
    """A counter whose carry chain drops the last stage (a real bug)."""
    circuit = Circuit("counter%d_bug" % n)
    circuit.add_input("en")
    for i in range(n):
        circuit.add_latch("s%d" % i, "ns%d" % i, init=False)
    carry = "en"
    for i in range(n):
        bit = "s%d" % i
        if i == n - 1:
            # BUG: top bit toggles on the *previous* carry's operand
            circuit.xor("ns%d" % i, bit, "s%d" % (i - 1))
        else:
            circuit.xor("ns%d" % i, bit, carry)
            circuit.and_("cy%d" % i, carry, bit)
            carry = "cy%d" % i
    circuit.add_output("s%d" % (n - 1))
    circuit.validate()
    return circuit


class TestEquivalent:
    def test_identical_copies(self):
        result = check_equivalence(gen.counter(3), gen.counter(3))
        assert result.holds
        assert result.counterexample is None

    def test_structurally_different_implementations(self):
        result = check_equivalence(gen.counter(4), mod_counter_variant(4))
        assert result.holds

    def test_retimed_shift_registers_differ(self):
        # A shift register vs one stage longer: same output function
        # delayed by one cycle -- NOT equivalent.
        a = gen.shift_register(3)
        b = gen.shift_register(4)
        # align interfaces: both expose their last stage, names differ
        # (s2 vs s3), so rebuild b's output under a's name.
        b2 = Circuit("shift4b")
        b2.add_input("d")
        for i in range(4):
            b2.add_latch("t%d" % i, "nt%d" % i, init=False)
        b2.add_gate("nt0", "BUF", ("d",))
        for i in range(1, 4):
            b2.add_gate("nt%d" % i, "BUF", ("t%d" % (i - 1),))
        b2.add_gate("s2", "BUF", ("t3",))
        b2.add_output("s2")
        b2.validate()
        result = check_equivalence(a, b2)
        assert not result.holds


class TestInequivalent:
    def test_buggy_counter_caught(self):
        good = gen.counter(4)
        bad = buggy_counter(4)
        result = check_equivalence(good, bad)
        assert not result.holds
        trace = result.counterexample
        assert trace is not None
        inputs = distinguishing_inputs(result)
        # Replaying the distinguishing inputs must expose an output
        # difference under some final input value.
        sim_good = ConcreteSimulator(good)
        sim_bad = ConcreteSimulator(bad)
        state_good = good.initial_state
        state_bad = bad.initial_state
        for step in inputs:
            state_good = sim_good.step(state_good, step)
            state_bad = sim_bad.step(state_bad, step)
        differs = any(
            sim_good.outputs(state_good, {"en": value})
            != sim_bad.outputs(state_bad, {"en": value})
            for value in (False, True)
        )
        assert differs

    def test_accessor_requires_counterexample(self):
        result = check_equivalence(gen.counter(2), gen.counter(2))
        with pytest.raises(ValueError):
            distinguishing_inputs(result)

    def test_limits_propagate(self):
        result = check_equivalence(
            gen.counter(5),
            mod_counter_variant(5),
            limits=ReachLimits(max_seconds=0.0),
        )
        assert not result.completed
        assert result.failure == "time"

"""Engine/harness tracing integration: all six engines, trace files."""

import glob
import os

import pytest

from repro.circuits import generators as gen
from repro.harness import AttemptSpec, run_attempt
from repro.harness.journal import RunJournal
from repro.obs import MemorySink, Tracer
from repro.reach import ENGINES

ENGINE_NAMES = ("bfv", "conj", "cbm", "tr", "sat", "bfv-sat")


def traced_run(engine, circuit=None, **kw):
    circuit = circuit or gen.counter(3)
    sink = MemorySink()
    tracer = Tracer(sink=sink)
    result = ENGINES[engine](circuit, tracer=tracer, **kw)
    tracer.close()
    return result, sink, tracer


class TestEngineTracing:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_one_record_per_iteration(self, engine):
        result, sink, _ = traced_run(engine)
        assert result.completed
        iterations = sink.by_event("iteration")
        assert len(iterations) == result.iterations
        assert [r["iteration"] for r in iterations] == list(
            range(1, result.iterations + 1)
        )
        assert iterations[-1]["fixpoint"] is True
        assert all(r["engine"] == engine for r in iterations)
        for record in iterations:
            assert record["frontier_size"] > 0
            assert record["reached_size"] > 0
            assert record["op_delta"] > 0

    @pytest.mark.parametrize("engine", ("cbm", "tr"))
    def test_chi_engines_report_chi_size(self, engine):
        _, sink, _ = traced_run(engine)
        for record in sink.by_event("iteration"):
            assert record["chi_size"] > 0

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_summary_record_and_extra_obs(self, engine):
        result, sink, tracer = traced_run(engine)
        (summary,) = sink.by_event("summary")
        assert summary["completed"] is True
        assert summary["iterations"] == result.iterations
        assert summary["num_states"] == result.num_states
        obs = result.extra["obs"]
        assert obs["iterations_recorded"] == result.iterations
        assert obs["phase_self_seconds"] == tracer.summary()["phase_self_seconds"]

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_phase_total_close_to_wall_clock(self, engine):
        # Acceptance criterion: exclusive phase times must cover the
        # run — within 10% of ReachResult.seconds.  The runs are
        # millisecond-scale, so a single sample's wall clock is at the
        # mercy of scheduler jitter; the coverage property only has to
        # hold for a clean sample, hence best-of-3.
        best = 0.0
        for _ in range(3):
            result, _, _ = traced_run(engine, circuit=gen.counter(5))
            phase_total = sum(result.extra["obs"]["phase_self_seconds"].values())
            assert result.seconds > 0
            assert phase_total <= result.seconds * 1.02  # can't exceed wall
            best = max(best, phase_total / result.seconds)
            if best >= 0.90:
                break
        assert best >= 0.90

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_expected_phases_present(self, engine):
        result, _, _ = traced_run(engine)
        phases = set(result.extra["obs"]["phase_self_seconds"])
        expected = {"setup", "image", "union", "fixpoint_test", "finalize"}
        assert expected <= phases
        if engine == "cbm":
            assert "chi_conversion" in phases

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_untraced_runs_have_no_obs(self, engine):
        result = ENGINES[engine](gen.counter(3))
        assert result.completed
        assert "obs" not in result.extra

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_tracing_does_not_change_results(self, engine):
        traced, _, _ = traced_run(engine)
        plain = ENGINES[engine](gen.counter(3))
        assert traced.iterations == plain.iterations
        assert traced.reached_size == plain.reached_size
        assert traced.num_states == plain.num_states


class TestMonitorEvents:
    def test_checkpoint_events_emitted(self, tmp_path):
        from repro.harness import Checkpointer

        sink = MemorySink()
        tracer = Tracer(sink=sink)
        ckpt = Checkpointer(
            str(tmp_path), engine="bfv", circuit="counter3", order="S1"
        )
        result = ENGINES["bfv"](
            gen.counter(3), checkpointer=ckpt, tracer=tracer
        )
        assert result.completed
        events = sink.by_event("checkpoint")
        assert events  # one per saved snapshot
        assert all(e["iteration"] >= 1 for e in events)
        assert "checkpoint" in result.extra["obs"]["phase_self_seconds"]

    def test_resume_event_emitted(self, tmp_path):
        spec = dict(
            circuit="traffic", engine="bfv", checkpoint_dir=str(tmp_path)
        )
        interrupted = run_attempt(AttemptSpec(max_iterations=3, **spec))
        assert not interrupted.completed

        from repro.circuits.catalog import resolve
        from repro.harness.worker import checkpointer_for

        full_spec = AttemptSpec(resume=True, **spec)
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        ckpt = checkpointer_for(full_spec, resolve("traffic").name)
        result = ENGINES["bfv"](
            resolve("traffic"), checkpointer=ckpt, tracer=tracer
        )
        assert result.completed
        (event,) = sink.by_event("resume")
        assert event["iteration"] == 3


class TestHarnessTraceDir:
    def test_run_attempt_writes_trace_file(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        result = run_attempt(
            AttemptSpec(circuit="s27", engine="bfv", trace_dir=trace_dir)
        )
        assert result.completed
        files = glob.glob(os.path.join(trace_dir, "trace-*.jsonl"))
        assert len(files) == 1
        assert os.path.basename(files[0]) == "trace-bfv-S1-s27.jsonl"
        records = RunJournal(files[0]).read()
        events = {r["event"] for r in records}
        assert "iteration" in events and "summary" in events

    def test_no_trace_dir_writes_nothing(self, tmp_path):
        result = run_attempt(AttemptSpec(circuit="s27", engine="bfv"))
        assert result.completed
        assert list(tmp_path.iterdir()) == []

    def test_fallback_ladder_journaled_in_trace_dir(self, tmp_path):
        from repro.harness import resilient_reach

        trace_dir = str(tmp_path / "traces")
        outcome, attempts = resilient_reach(
            "s27",
            engine="bfv",
            max_iterations=1,  # every rung fails
            fallback=True,
            trace_dir=trace_dir,
        )
        assert not outcome.completed
        records = RunJournal(
            os.path.join(trace_dir, "attempts.jsonl")
        ).read()
        fallback = [
            r for r in records if r["event"] == "fallback_attempt"
        ]
        assert len(fallback) == len(attempts) > 1
        assert fallback[0]["engine"] == "bfv"
        assert all(r["outcome"] == "iterations" for r in fallback)

    def test_supervised_child_writes_trace(self, tmp_path):
        from repro.harness import resilient_reach

        trace_dir = str(tmp_path / "traces")
        outcome, _ = resilient_reach(
            "s27", engine="tr", isolate=True, trace_dir=trace_dir
        )
        assert outcome.completed
        files = glob.glob(os.path.join(trace_dir, "trace-tr-*.jsonl"))
        assert len(files) == 1
        assert "obs" in outcome.extra  # summary crossed the boundary

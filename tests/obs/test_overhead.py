"""Disabled tracing must be (near) free: <2% of a small reachability run.

Naive before/after wall-clock comparison of two engine runs is too
noisy for CI (the two runs legitimately differ by more than 2% from
allocator and cache luck alone).  Instead we measure the *actual
per-iteration cost* of the null-tracer calls the instrumented engines
make — begin/end iteration plus the loop's phase spans — over many
thousands of cycles, and require that cost, multiplied by the run's
iteration count, to stay under 2% of the run's measured wall time.
"""

import time

from repro.circuits import generators as gen
from repro.obs import NULL_TRACER
from repro.reach import bfv_reachability

#: The spans the busiest engine loop opens per iteration.
LOOP_PHASES = ("image", "reparam", "union", "fixpoint_test")


def null_cost_per_iteration(cycles=20000):
    """Median-of-3 cost of one iteration's worth of null-tracer calls."""
    tracer = NULL_TRACER
    timings = []
    for _ in range(3):
        start = time.perf_counter()
        for i in range(cycles):
            tracer.begin_iteration(i)
            for phase in LOOP_PHASES:
                with tracer.span(phase):
                    pass
            tracer.end_iteration(i)
        timings.append(time.perf_counter() - start)
    timings.sort()
    return timings[1] / cycles


class TestNullTracerOverhead:
    def test_disabled_overhead_under_two_percent(self):
        # A small but non-trivial run: 32 states, 32 image steps.
        result = bfv_reachability(gen.counter(5))
        assert result.completed
        assert result.seconds > 0
        per_iteration = null_cost_per_iteration()
        added = per_iteration * result.iterations
        assert added < 0.02 * result.seconds, (
            "null tracer cost %.3fus/iter x %d iterations = %.6fs "
            "exceeds 2%% of the %.6fs run"
            % (
                per_iteration * 1e6,
                result.iterations,
                added,
                result.seconds,
            )
        )

    def test_null_tracer_allocates_no_spans(self):
        # The disabled hot path returns one shared span object, so the
        # engine loop does not allocate per phase.
        spans = {id(NULL_TRACER.span(p)) for p in LOOP_PHASES}
        assert len(spans) == 1

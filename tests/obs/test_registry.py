"""MetricsRegistry semantics: counters, gauges, histograms, exposition.

The registry is the live side of observability — everything here is
pure in-process arithmetic, no sockets or engines.  The one exception
is the overhead gate at the bottom, which mirrors
:mod:`tests.obs.test_overhead`: a tracer *without* a registry must not
get measurably slower from the registry branches in its hot path.
"""

import json
import re
import time

import pytest

from repro.circuits import generators as gen
from repro.obs import (
    MetricsRegistry,
    phase_percentiles,
    snapshot_delta,
)
from repro.obs.metrics import percentile
from repro.obs.tracer import Tracer
from repro.reach import bfv_reachability


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"kind": "a"}).inc()
        registry.counter("hits", {"kind": "b"}).inc(2)
        snapshot = registry.snapshot()
        values = {
            name: value for name, value in snapshot["counters"].items()
        }
        assert values['hits{kind="a"}'] == 1
        assert values['hits{kind="b"}'] == 2


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4

    def test_string_info_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("worker_job", {"worker": "0"}).set("bfv:s27")
        snapshot = registry.snapshot()
        assert snapshot["gauges"]['worker_job{worker="0"}'] == "bfv:s27"


class TestHistogram:
    def test_snapshot_counts_sum_max(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t")
        for value in (0.002, 0.002, 0.2):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.204)
        assert snap["max"] == pytest.approx(0.2)

    def test_quantiles_are_monotone_and_bounded(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t")
        for i in range(100):
            histogram.observe(0.001 * (i + 1))  # 1ms .. 100ms
        p50 = histogram.quantile(0.5)
        p90 = histogram.quantile(0.9)
        p99 = histogram.quantile(0.99)
        assert 0 < p50 <= p90 <= p99 <= 0.1
        # Bucket interpolation keeps the answers near the truth.
        assert p50 == pytest.approx(0.05, abs=0.05)

    def test_top_bucket_clamps_to_observed_max(self):
        # A sample beyond the last finite bound lands in +Inf; the
        # quantile must clamp to the observed max, not infinity.
        registry = MetricsRegistry()
        histogram = registry.histogram("t")
        histogram.observe(1e6)
        value = histogram.quantile(0.99)
        assert value <= 1e6  # finite: clamped by the observed max
        assert value > 300.0  # inside the +Inf bucket, not the bound
        assert histogram.quantile(1.0) == pytest.approx(1e6)

    def test_empty_histogram_quantile_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("t").quantile(0.5) == 0.0


class TestSnapshot:
    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c", {"k": "v"}).inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["counters"] == snapshot["counters"]
        [(name, h)] = list(snapshot["histograms"].items())
        assert name == "h"
        assert h["count"] == 1
        assert "p50" in h and "buckets" in h

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        histogram = registry.histogram("h")
        counter.inc(2)
        histogram.observe(0.01)
        before = registry.snapshot()
        counter.inc(3)
        histogram.observe(0.01)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"]["c"] == 3
        assert delta["histogram_counts"]["h"] == 1


class TestPrometheus:
    def parse(self, text):
        """name{labels} -> float value, skipping comments."""
        values = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            values[name] = float(value)
        return values

    def test_rendering_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("requests", {"op": "reach"}).inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("seconds").observe(0.003)
        values = self.parse(registry.render_prometheus())
        assert values['repro_requests_total{op="reach"}'] == 3
        assert values["repro_depth"] == 2
        assert values["repro_seconds_count"] == 1
        assert values["repro_seconds_sum"] == pytest.approx(0.003)
        # Cumulative buckets: every bound >= 0.005 holds the sample.
        bucket_lines = [
            name
            for name in values
            if name.startswith("repro_seconds_bucket")
        ]
        assert any('le="+Inf"' in name for name in bucket_lines)
        assert values['repro_seconds_bucket{le="+Inf"}'] == 1

    def test_string_gauges_become_info_series(self):
        registry = MetricsRegistry()
        registry.gauge("worker_job", {"worker": "1"}).set("bfv:s27")
        text = registry.render_prometheus()
        match = re.search(
            r'repro_worker_job\{(.*)\} 1(\.0)?$', text, re.MULTILINE
        )
        assert match, text
        assert 'value="bfv:s27"' in match.group(1)
        assert 'worker="1"' in match.group(1)


class TestPercentiles:
    def test_exact_percentile_helper(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.9) == 7.0

    def test_phase_percentiles_from_iteration_records(self):
        records = [
            {"event": "iteration", "phases": {"image": 0.01 * (i + 1)}}
            for i in range(10)
        ]
        table = phase_percentiles(records)
        assert table["image"]["n"] == 10
        assert table["image"]["max"] == pytest.approx(0.1)
        assert 0 < table["image"]["p50"] <= table["image"]["p90"] <= 0.1


class TestTracerIntegration:
    def test_tracer_feeds_registry(self):
        registry = MetricsRegistry()
        clock = iter(x * 0.5 for x in range(100))
        tracer = Tracer(
            registry=registry,
            clock=lambda: next(clock),
            measure_rss=False,
            count_live=False,
        )
        tracer.bind(engine="bfv", order="S1", circuit="c")
        for i in range(3):
            tracer.begin_iteration(i)
            with tracer.span("image"):
                pass
            tracer.end_iteration(i)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["iterations"] == 3
        assert snapshot["histograms"]["iteration_seconds"]["count"] == 3
        assert (
            snapshot["histograms"]['phase_self_seconds{phase="image"}'][
                "count"
            ]
            == 3
        )


#: The spans the busiest engine loop opens per iteration.
LOOP_PHASES = ("image", "reparam", "union", "fixpoint_test")


def registryless_cost_per_iteration(cycles=5000):
    """Median-of-3 per-iteration cost of a tracer *without* a registry.

    This is the path every non-serving run takes; the registry branches
    added to the tracer hot path must stay invisible here.
    """
    tracer = Tracer(
        sink=None, registry=None, measure_rss=False, count_live=False
    )
    tracer.bind(engine="bfv", order="S1", circuit="overhead")
    timings = []
    for _ in range(3):
        start = time.perf_counter()
        for i in range(cycles):
            tracer.begin_iteration(i)
            for phase in LOOP_PHASES:
                with tracer.span(phase):
                    pass
            tracer.end_iteration(i)
        timings.append(time.perf_counter() - start)
    timings.sort()
    return timings[1] / cycles


class TestRegistryDisabledOverhead:
    def test_disabled_path_under_two_percent(self):
        result = bfv_reachability(gen.counter(5))
        assert result.completed
        per_iteration = registryless_cost_per_iteration()
        added = per_iteration * result.iterations
        assert added < 0.02 * result.seconds, (
            "registry-less tracer cost %.3fus/iter x %d iterations = "
            "%.6fs exceeds 2%% of the %.6fs run"
            % (
                per_iteration * 1e6,
                result.iterations,
                added,
                result.seconds,
            )
        )

"""Sink tests: JSONL interop with the harness journal, filenames."""

import json
import os

import pytest

from repro.harness.journal import RunJournal
from repro.obs import JsonlSink, MemorySink, NullSink, trace_filename


class TestTraceFilename:
    def test_plain(self):
        assert trace_filename("bfv", "S1", "s27") == "trace-bfv-S1-s27.jsonl"

    def test_hostile_components_are_sanitized(self):
        name = trace_filename("bfv", "S1", "../../etc/passwd")
        assert "/" not in name
        assert name == "trace-bfv-S1-.._.._etc_passwd.jsonl"


class TestMemorySink:
    def test_collects_and_filters(self):
        sink = MemorySink()
        sink.emit({"event": "iteration", "iteration": 1})
        sink.emit({"event": "gc", "freed": 3})
        sink.emit({"event": "iteration", "iteration": 2})
        assert len(sink.records) == 3
        assert [r["iteration"] for r in sink.by_event("iteration")] == [1, 2]
        assert sink.by_event("summary") == []


class TestJsonlSink:
    def test_lazy_open_creates_no_empty_file(self, tmp_path):
        path = str(tmp_path / "sub" / "t.jsonl")
        sink = JsonlSink(path)
        assert not os.path.exists(path)
        sink.close()  # closing an unopened sink is fine
        assert not os.path.exists(path)
        sink.emit({"event": "x"})
        assert os.path.exists(path)
        sink.close()

    def test_records_round_trip_through_run_journal(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"event": "iteration", "iteration": 1, "seconds": 0.5})
            sink.emit({"event": "summary", "completed": True})
        records = RunJournal(path).read()
        assert [r["event"] for r in records] == ["iteration", "summary"]
        # The sink stamps a wall timestamp like the journal does.
        assert all("wall" in r for r in records)
        assert sink.emitted == 2

    def test_append_mode_extends_previous_trace(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"event": "iteration", "iteration": 1})
        with JsonlSink(path) as sink:
            sink.emit({"event": "iteration", "iteration": 2})
        iters = [r["iteration"] for r in RunJournal(path)]
        assert iters == [1, 2]

    def test_non_json_values_are_stringified(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"event": "x", "obj": object()})
        with open(path) as handle:
            record = json.loads(handle.readline())
        assert isinstance(record["obj"], str)

    def test_lines_are_sorted_and_parseable(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"z": 1, "a": 2, "event": "x", "wall": 0})
        with open(path) as handle:
            line = handle.readline()
        assert json.loads(line) == {"z": 1, "a": 2, "event": "x", "wall": 0}
        keys = list(json.loads(line))
        assert keys == sorted(keys)


class TestNullSink:
    def test_discards(self):
        sink = NullSink()
        sink.emit({"event": "x"})
        sink.close()


class TestSinkContextManager:
    def test_close_propagates_nothing(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with JsonlSink(path) as sink:
                sink.emit({"event": "x"})
                raise RuntimeError("boom")
        # sink was closed by __exit__; file intact and readable
        assert RunJournal(path).read()[0]["event"] == "x"

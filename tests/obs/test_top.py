"""``python -m repro top`` and ``repro trace --follow``: live views.

TopState is a pure fold, so most coverage here needs no clock at all;
the loop functions run with ``max_seconds=0`` (one poll, then return)
against real trace files on disk.
"""

import io
import json
import os

import pytest

from repro.cli import main
from repro.obs.top import TopState, follow_trace, run_tail_top


def iteration(engine="bfv", circuit="s27", order="S1", i=0, **extra):
    record = {
        "event": "iteration",
        "engine": engine,
        "circuit": circuit,
        "order": order,
        "iteration": i,
        "frontier_size": 10 + i,
        "live_nodes": 100 + i,
        "seconds": 0.01,
    }
    record.update(extra)
    return record


class TestTopState:
    def test_latest_iteration_wins(self):
        state = TopState()
        state.update(iteration(i=1))
        state.update(iteration(i=7))
        rows = state.rows()
        assert len(rows) == 2  # header + one run
        assert rows[1][0] == "bfv/s27/S1"
        assert rows[1][1] == "7"
        assert rows[1][-1] == "running"

    def test_summary_marks_run_finished(self):
        state = TopState()
        state.update(iteration(i=3))
        state.update(
            {
                "event": "summary",
                "engine": "bfv",
                "circuit": "s27",
                "order": "S1",
                "completed": True,
            }
        )
        assert state.rows()[1][-1] == "completed"

    def test_failed_run_without_iterations_still_shows(self):
        state = TopState()
        state.update(
            {
                "event": "summary",
                "engine": "sat",
                "circuit": "c",
                "order": "S2",
                "completed": False,
                "failure": "oom",
            }
        )
        rows = state.rows()
        assert rows[1][0] == "sat/c/S2"
        assert rows[1][-1] == "failed: oom"

    def test_running_rows_sort_before_finished(self):
        state = TopState()
        state.update(iteration(circuit="aaa"))
        state.update(iteration(circuit="zzz"))
        state.update(
            {
                "event": "summary",
                "engine": "bfv",
                "circuit": "aaa",
                "order": "S1",
                "completed": True,
            }
        )
        rows = state.rows()
        assert rows[1][0] == "bfv/zzz/S1"  # still running, first
        assert rows[2][0] == "bfv/aaa/S1"

    def test_worker_occupancy_header(self):
        state = TopState()
        state.update(
            {"event": "worker_state", "worker": 0, "state": "busy",
             "cell": "bfv:s27"}
        )
        state.update(
            {"event": "worker_state", "worker": 1, "state": "idle",
             "cell": ""}
        )
        assert "workers 1/2 busy" in state.header()
        assert "worker00  bfv:s27" in state.render()
        # The idle worker shows in the count but gets no cell line.
        assert "worker01" not in state.render()

    def test_serve_dispositions_counted(self):
        state = TopState()
        for disposition in ("cache_hit", "cache_hit", "cold"):
            state.update(
                {"event": "serve_request", "disposition": disposition}
            )
        assert "serve cache_hit=2 cold=1" in state.header()

    def test_malformed_worker_record_ignored(self):
        state = TopState()
        state.update({"event": "worker_state", "worker": "not-an-int"})
        assert state.workers == {}


class TestTailTop:
    def write(self, path, records):
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def test_one_shot_tail_renders_table(self, tmp_path):
        self.write(
            str(tmp_path / "trace-bfv-S1-s27.jsonl"),
            [iteration(i=0), iteration(i=4)],
        )
        stream = io.StringIO()
        state = run_tail_top(
            str(tmp_path),
            max_seconds=0,
            plain=True,
            stream=stream,
            sleep=lambda _: None,
        )
        assert state.runs["bfv/s27/S1"]["iteration"] == 4
        out = stream.getvalue()
        assert "repro top" in out
        assert "bfv/s27/S1" in out

    def test_recursive_tail_sees_worker_sidecars(self, tmp_path):
        nested = tmp_path / "sub"
        nested.mkdir()
        self.write(
            str(nested / "worker00-state.jsonl"),
            [{"event": "worker_state", "worker": 0, "state": "busy",
              "cell": "bfv:s27"}],
        )
        stream = io.StringIO()
        state = run_tail_top(
            str(tmp_path),
            max_seconds=0,
            stream=stream,
            sleep=lambda _: None,
        )
        assert state.workers[0] == ("busy", "bfv:s27")

    def test_cli_top_on_trace_dir(self, tmp_path, capsys):
        self.write(
            str(tmp_path / "t.jsonl"), [iteration(i=2)]
        )
        code = main(
            ["top", str(tmp_path), "--max-seconds", "0", "--plain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bfv/s27/S1" in out

    def test_cli_top_bad_target(self):
        with pytest.raises(SystemExit, match="neither an existing"):
            main(["top", "no-such-dir-and-not-hostport"])

    def test_cli_top_server_mode_needs_key_or_circuit(self):
        with pytest.raises(SystemExit, match="--key or --circuit"):
            main(["top", "127.0.0.1:1", "--max-seconds", "0"])


class TestFollow:
    def test_follow_prints_one_line_per_record(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(iteration(i=1)) + "\n")
            handle.write(json.dumps({"event": "gc"}) + "\n")  # skipped
            handle.write(
                json.dumps(
                    {
                        "event": "summary",
                        "engine": "bfv",
                        "circuit": "s27",
                        "order": "S1",
                        "completed": True,
                        "iterations": 2,
                        "seconds": 0.5,
                    }
                )
                + "\n"
            )
        stream = io.StringIO()
        printed = follow_trace(
            path, max_seconds=0, stream=stream, sleep=lambda _: None
        )
        lines = stream.getvalue().splitlines()
        assert printed == 2
        assert lines[0].startswith("bfv/s27/S1 iter=1")
        assert "summary completed" in lines[1]

    def test_cli_trace_follow(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(iteration(i=3)) + "\n")
        code = main(
            ["trace", path, "--follow", "--max-seconds", "0",
             "--poll", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iter=3" in out

    def test_cli_trace_table_mode_unchanged(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        assert main(["reach", "s27", "--trace-dir", trace_dir]) == 0
        capsys.readouterr()
        assert main(["trace", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "== bfv / s27 / order S1 ==" in out
        # The new percentile table rides along in the rendered report.
        assert "per-iteration phase self-time percentiles:" in out
        assert "p50(s)" in out and "p90(s)" in out

"""CLI integration: --trace-dir on reach/batch, the trace subcommand."""

import os

import pytest

from repro.cli import main
from repro.obs.report import (
    format_phase_breakdown,
    group_runs,
    load_trace,
    render_trace,
)


class TestReachTraceDir:
    def test_reach_writes_and_trace_renders(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        assert main(["reach", "s27", "--trace-dir", trace_dir]) == 0
        capsys.readouterr()
        assert os.path.exists(
            os.path.join(trace_dir, "trace-bfv-S1-s27.jsonl")
        )

        assert main(["trace", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "== bfv / s27 / order S1 ==" in out
        # Size-trajectory table columns.
        for header in ("Iter", "Frontier", "Reached", "Ops", "Hit%",
                       "Live", "Time(s)"):
            assert header in out
        # Phase breakdown with coverage line.
        assert "Phase" in out and "reparam" in out
        assert "phase total" in out and "wall" in out
        assert "summary: completed" in out

    def test_trace_accepts_single_file(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        main(["reach", "s27", "--engine", "tr", "--trace-dir", trace_dir])
        capsys.readouterr()
        path = os.path.join(trace_dir, "trace-tr-S1-s27.jsonl")
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "== tr / s27 / order S1 ==" in out
        assert "Chi" in out  # the tr engine reports chi sizes

    def test_engine_all_writes_one_file_per_engine(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        main(["reach", "s27", "--engine", "all", "--trace-dir", trace_dir])
        capsys.readouterr()
        names = sorted(os.listdir(trace_dir))
        assert names == [
            "trace-bfv-S1-s27.jsonl",
            # The dash in "bfv-sat" is rewritten: tags stay parseable
            # as dash-separated engine/order/circuit.
            "trace-bfv_sat-S1-s27.jsonl",
            "trace-bitset-S1-s27.jsonl",
            "trace-cbm-S1-s27.jsonl",
            "trace-conj-S1-s27.jsonl",
            "trace-sat-S1-s27.jsonl",
            "trace-tr-S1-s27.jsonl",
            "trace-zono-S1-s27.jsonl",
        ]
        main(["trace", trace_dir])
        out = capsys.readouterr().out
        for engine in (
            "bfv", "cbm", "conj", "tr", "sat", "bfv-sat", "bitset", "zono"
        ):
            assert "== %s / s27 / order S1 ==" % engine in out

    def test_harness_path_traces_too(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        assert (
            main(
                [
                    "reach",
                    "s27",
                    "--isolate",
                    "--trace-dir",
                    trace_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert os.path.exists(
            os.path.join(trace_dir, "trace-bfv-S1-s27.jsonl")
        )

    def test_reach_without_trace_dir_unchanged(self, tmp_path, capsys):
        assert main(["reach", "s27"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert list(tmp_path.iterdir()) == []


class TestBatchTraceDir:
    def test_batch_traces_each_circuit(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        code = main(
            [
                "batch",
                "traffic",
                "s27",
                "--no-isolate",
                "--trace-dir",
                trace_dir,
            ]
        )
        capsys.readouterr()
        assert code == 0
        names = os.listdir(trace_dir)
        # Batch traces are namespaced per job (so shared basenames
        # cannot collide) and merged into one flat directory.
        assert "trace-job000-traffic-bfv-S1-traffic.jsonl" in names
        assert "trace-job001-s27-bfv-S1-s27.jsonl" in names
        assert "attempts.jsonl" in names


class TestTraceCommand:
    def test_missing_path_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["trace", str(tmp_path / "nope")])

    def test_empty_directory_reports_no_records(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 0
        assert "no trace records" in capsys.readouterr().out


class TestReportHelpers:
    def test_group_runs_splits_by_flavor(self):
        records = [
            {"event": "iteration", "engine": "bfv", "circuit": "a", "order": "S1"},
            {"event": "iteration", "engine": "tr", "circuit": "a", "order": "S1"},
            {"event": "summary", "engine": "bfv", "circuit": "a", "order": "S1"},
        ]
        groups = group_runs(records)
        assert [key for key, _ in groups] == [
            ("bfv", "a", "S1"),
            ("tr", "a", "S1"),
        ]
        assert len(groups[0][1]) == 2

    def test_phase_breakdown_coverage_line(self):
        text = format_phase_breakdown(
            {"image": 0.6, "reparam": 0.3}, wall_seconds=1.0
        )
        assert "image" in text and "reparam" in text
        assert "66.7%" in text  # image's share of the phase total
        assert "phase total 0.9000s of 1.0000s wall (90.0% coverage)" in text

    def test_render_trace_tolerates_partial_records(self):
        # Records missing optional fields render as "-", never raise.
        out = render_trace(
            [
                {
                    "event": "iteration",
                    "engine": "bfv",
                    "circuit": "c",
                    "order": "S1",
                    "iteration": 1,
                }
            ]
        )
        assert "== bfv / c / order S1 ==" in out
        assert "-" in out

    def test_load_trace_skips_non_jsonl(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello\n")
        (tmp_path / "t.jsonl").write_text('{"event": "gc"}\n')
        records = load_trace(str(tmp_path))
        assert len(records) == 1
        assert records[0]["_file"] == "t.jsonl"

"""Tracer unit tests: spans, iteration records, null path."""

from repro.bdd import BDD
from repro.obs import (
    NULL_TRACER,
    MemorySink,
    NullTracer,
    Tracer,
    ensure_tracer,
)
from repro.obs.tracer import NULL_SPAN, PHASES


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestNullTracer:
    def test_ensure_tracer_defaults_to_singleton(self):
        assert ensure_tracer(None) is NULL_TRACER
        real = Tracer()
        assert ensure_tracer(real) is real

    def test_disabled_flag_and_noop_surface(self):
        tracer = NULL_TRACER
        assert tracer.enabled is False
        assert isinstance(tracer, NullTracer)
        # Every engine-facing call is a harmless no-op.
        tracer.attach(object())
        tracer.bind(engine="bfv")
        with tracer.span("image"):
            pass
        tracer.begin_iteration(1)
        tracer.end_iteration(1, frontier_size=3)
        tracer.event("gc", freed=1)
        tracer.finish(None)
        tracer.close()
        assert tracer.summary() == {}

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("image") is NULL_TRACER.span("reparam")
        assert NULL_TRACER.span("gc") is NULL_SPAN


class TestSpans:
    def test_exclusive_time_subtracts_children(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("checkpoint"):
            clock.tick(1.0)
            with tracer.span("gc"):
                clock.tick(3.0)
            clock.tick(0.5)
        assert tracer.phase_seconds["checkpoint"] == 4.5
        assert tracer.phase_seconds["gc"] == 3.0
        # Self time excludes the nested gc span entirely.
        assert tracer.phase_self_seconds["checkpoint"] == 1.5
        assert tracer.phase_self_seconds["gc"] == 3.0
        assert tracer.span_counts == {"checkpoint": 1, "gc": 1}

    def test_self_times_are_disjoint(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("image"):
            clock.tick(2.0)
        with tracer.span("reparam"):
            clock.tick(1.0)
            with tracer.span("gc"):
                clock.tick(1.0)
        total_self = sum(tracer.phase_self_seconds.values())
        assert total_self == 4.0  # == wall, no double counting

    def test_engine_phases_are_conventional_vocabulary(self):
        for phase in ("image", "reparam", "union", "fixpoint_test",
                      "chi_conversion", "setup", "finalize", "telemetry"):
            assert phase in PHASES


class TestIterations:
    def test_iteration_record_fields(self):
        clock = FakeClock()
        sink = MemorySink()
        bdd = BDD(["a", "b"])
        tracer = Tracer(
            sink=sink, bdd=bdd, clock=clock, measure_rss=False
        )
        tracer.bind(engine="bfv", circuit="c", order="S1")
        tracer.begin_iteration(1)
        with tracer.span("image"):
            clock.tick(0.25)
            bdd.and_(bdd.var("a"), bdd.var("b"))
        tracer.end_iteration(1, frontier_size=4, reached_size=7)
        (record,) = sink.by_event("iteration")
        assert record["engine"] == "bfv"
        assert record["circuit"] == "c"
        assert record["order"] == "S1"
        assert record["iteration"] == 1
        assert record["seconds"] == 0.25
        assert record["phases"] == {"image": 0.25}
        assert record["op_delta"] == 1
        assert record["cache_misses_delta"] == 1
        assert 0.0 <= record["cache_hit_rate"] <= 1.0
        assert record["frontier_size"] == 4
        assert record["reached_size"] == 7
        assert record["live_nodes"] >= 0
        assert "rss_bytes" not in record  # measure_rss=False

    def test_per_iteration_phase_deltas_not_cumulative(self):
        clock = FakeClock()
        sink = MemorySink()
        tracer = Tracer(sink=sink, clock=clock)
        for i in (1, 2):
            tracer.begin_iteration(i)
            with tracer.span("image"):
                clock.tick(1.0)
            tracer.end_iteration(i)
        first, second = sink.by_event("iteration")
        assert first["phases"]["image"] == 1.0
        assert second["phases"]["image"] == 1.0  # delta, not 2.0

    def test_end_without_begin_is_ignored(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        tracer.end_iteration(5, frontier_size=1)
        assert sink.records == []

    def test_telemetry_phase_accounts_observer_cost(self):
        clock = FakeClock()
        bdd = BDD(["a"])
        tracer = Tracer(
            sink=MemorySink(), bdd=bdd, clock=clock, measure_rss=False
        )
        tracer.begin_iteration(1)
        tracer.end_iteration(1)
        assert "telemetry" in tracer.phase_self_seconds


class TestEventsAndSummary:
    def test_gc_hook_emits_event(self):
        sink = MemorySink()
        bdd = BDD(["a", "b"])
        tracer = Tracer(sink=sink, bdd=bdd)
        node = bdd.and_(bdd.var("a"), bdd.var("b"))
        del node
        bdd.collect_garbage()
        events = sink.by_event("gc")
        assert events and "freed" in events[0]
        assert events[0]["allocated_nodes"] == bdd.num_nodes

    def test_attach_is_idempotent(self):
        bdd = BDD(["a"])
        tracer = Tracer(sink=MemorySink())
        tracer.attach(bdd)
        tracer.attach(bdd)
        assert bdd.gc_hooks.count(tracer._on_gc) == 1

    def test_bind_drops_none_values(self):
        tracer = Tracer(sink=MemorySink())
        tracer.bind(engine="bfv", circuit=None)
        assert tracer.meta == {"engine": "bfv"}

    def test_summary_and_finish(self):
        clock = FakeClock()
        sink = MemorySink()
        tracer = Tracer(sink=sink, clock=clock)
        tracer.bind(engine="tr")
        with tracer.span("image"):
            clock.tick(2.0)
        summary = tracer.summary()
        assert summary["phase_seconds"] == {"image": 2.0}
        assert summary["phase_self_seconds"] == {"image": 2.0}
        assert summary["span_counts"] == {"image": 1}
        assert summary["iterations_recorded"] == 0

        class Result:
            completed = True
            iterations = 9
            seconds = 2.5
            failure = None

        tracer.finish(Result())
        (record,) = sink.by_event("summary")
        assert record["engine"] == "tr"
        assert record["completed"] is True
        assert record["iterations"] == 9
        assert record["seconds"] == 2.5
        assert "failure" not in record  # None attributes are omitted

    def test_sinkless_tracer_still_summarizes(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("union"):
            clock.tick(1.0)
        tracer.finish(None)  # no sink: must not raise
        assert tracer.summary()["phase_seconds"] == {"union": 1.0}

"""Variable-order family tests: completeness, determinism, distinctness."""

import pytest

from repro.circuits import generators as gen
from repro.circuits.iscas import s27
from repro.order import (
    FAMILIES,
    bfs_interleave_order,
    fanin_dfs_order,
    order_for,
    random_order,
    reversed_order,
    sifted_order,
)


def slot_universe(circuit):
    return set(circuit.inputs) | set(circuit.latches)


@pytest.fixture(params=[gen.counter(3), gen.fifo_controller(2), s27()])
def circuit(request):
    return request.param


class TestAllFamilies:
    def test_every_family_is_a_permutation(self, circuit):
        expected = slot_universe(circuit)
        for family in FAMILIES:
            slots = order_for(circuit, family)
            assert len(slots) == len(expected), family
            assert set(slots) == expected, family

    def test_families_deterministic(self, circuit):
        for family in FAMILIES:
            assert order_for(circuit, family) == order_for(circuit, family)

    def test_unknown_family(self, circuit):
        with pytest.raises(KeyError):
            order_for(circuit, "Z9")


class TestSpecificFamilies:
    def test_p_is_reverse_of_s1(self, circuit):
        assert reversed_order(circuit) == list(
            reversed(fanin_dfs_order(circuit))
        )

    def test_o_seed_changes_order(self):
        circuit = gen.fifo_controller(2)
        assert random_order(circuit, seed=0) != random_order(circuit, seed=1)

    def test_s1_s2_start_from_latches(self, circuit):
        for order_fn in (fanin_dfs_order, bfs_interleave_order):
            slots = order_fn(circuit)
            assert slots[0] in set(circuit.latches) | set(circuit.inputs)

    def test_sifted_order_runs(self):
        circuit = gen.coupled_pairs(3)
        slots = sifted_order(circuit)
        assert set(slots) == slot_universe(circuit)

    def test_sifted_order_interleaves_coupled_pairs(self):
        # Sifting should place each pair's two registers close together
        # (that is what makes the "D" order good for characteristic
        # functions on this family).
        circuit = gen.coupled_pairs(4)
        slots = sifted_order(circuit)
        positions = {net: i for i, net in enumerate(slots)}
        distances = [
            abs(positions["a%d" % j] - positions["b%d" % j]) for j in range(4)
        ]
        assert sum(distances) / len(distances) <= 4.0

"""Backward reachability tests, including forward/backward duality."""

import itertools
import random

import pytest

from repro.circuits import generators as gen
from repro.circuits.iscas import s27
from repro.errors import ResourceLimitError
from repro.reach import ReachLimits, tr_reachability
from repro.reach.backward import backward_reachability, can_reach
from repro.sim import ConcreteSimulator, explicit_reachable


def explicit_backward(circuit, targets):
    """All states that can reach a target, by explicit fixed point."""
    simulator = ConcreteSimulator(circuit)
    nets = circuit.state_nets
    states = list(itertools.product([False, True], repeat=len(nets)))
    inputs = list(
        itertools.product([False, True], repeat=len(circuit.inputs))
    )
    successors = {
        state: {
            simulator.step(state, dict(zip(circuit.inputs, vector)))
            for vector in inputs
        }
        for state in states
    }
    reached = set(targets)
    changed = True
    while changed:
        changed = False
        for state in states:
            if state not in reached and successors[state] & reached:
                reached.add(state)
                changed = True
    return reached


def decode(result):
    space = result.extra["space"]
    chi = result.extra["backward_chi"]
    nets = list(space.circuit.latches)
    index = {net: i for i, net in enumerate(space.state_order)}
    out = set()
    for state in itertools.product([False, True], repeat=len(nets)):
        assignment = {
            space.s_vars[index[net]]: state[i]
            for i, net in enumerate(nets)
        }
        if space.bdd.evaluate(chi, assignment):
            out.add(state)
    return out


class TestBackwardMatchesOracle:
    @pytest.mark.parametrize(
        "factory,target",
        [
            (lambda: gen.counter(3), (True, True, True)),
            (lambda: gen.johnson(4), (True, True, True, True)),
            (lambda: gen.token_ring(3), (False, False, True)),
            (s27, (True, False, True)),
            (lambda: gen.combination_lock([True, False]), (False, True)),
        ],
        ids=["counter", "johnson", "ring", "s27", "lock"],
    )
    def test_against_explicit(self, factory, target):
        circuit = factory()
        result = backward_reachability(circuit, [target])
        assert result.completed
        expected = explicit_backward(circuit, {target})
        assert decode(result) == expected
        assert result.num_states == len(expected)


class TestForwardBackwardDuality:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gen.lfsr(4),
            lambda: gen.fifo_controller(1),
            lambda: gen.random_control(6, seed=17),
        ],
        ids=["lfsr", "fifo", "rctl"],
    )
    def test_reachable_iff_initial_in_backward_set(self, factory):
        circuit = factory()
        forward = explicit_reachable(circuit)
        nets = circuit.state_nets
        rng = random.Random(0)
        samples = set(itertools.islice(
            itertools.product([False, True], repeat=len(nets)), 0, None
        ))
        samples = rng.sample(sorted(samples), min(12, len(samples)))
        for state in samples:
            assert can_reach(circuit, [state]) == (tuple(state) in forward)


class TestBudget:
    def test_limits_respected(self):
        circuit = gen.counter(5)
        result = backward_reachability(
            circuit,
            [(True,) * 5],
            limits=ReachLimits(max_seconds=0.0),
        )
        assert not result.completed
        assert result.failure == "time"

    def test_can_reach_raises_on_budget(self):
        circuit = gen.counter(5)
        with pytest.raises(ResourceLimitError):
            can_reach(
                circuit,
                [(True,) * 5],
                limits=ReachLimits(max_seconds=0.0),
            )


class TestTargetSemantics:
    def test_targets_included(self):
        circuit = gen.counter(2)
        target = (True, False)
        result = backward_reachability(circuit, [target])
        assert target in decode(result)

    def test_multiple_targets_union(self):
        circuit = gen.johnson(3)
        t1 = (True, False, False)
        t2 = (False, False, True)
        separate = decode(
            backward_reachability(circuit, [t1])
        ) | decode(backward_reachability(circuit, [t2]))
        combined = decode(backward_reachability(circuit, [t1, t2]))
        assert combined == separate

"""ReachSpace layout, limits and monitor tests."""

import pytest

from repro.circuits import generators as gen
from repro.errors import CircuitError, ResourceLimitError
from repro.reach import ReachLimits, ReachSpace, RunMonitor
from repro.reach.common import FAILURE_LABELS, ReachResult


class TestReachSpace:
    def test_default_layout(self):
        circuit = gen.counter(3)
        space = ReachSpace(circuit)
        assert len(space.s_vars) == 3
        assert len(space.t_vars) == 3
        assert len(space.x_vars) == 1
        # s and t variables are adjacent per state bit
        for s, t in zip(space.s_vars, space.t_vars):
            assert space.bdd.level_of(t) == space.bdd.level_of(s) + 1

    def test_component_order_follows_slots(self):
        circuit = gen.counter(3)
        slots = ["s2", "s1", "s0", "en"]
        space = ReachSpace(circuit, slots)
        assert space.state_order == ["s2", "s1", "s0"]
        levels = [space.bdd.level_of(v) for v in space.s_vars]
        assert levels == sorted(levels)

    def test_missing_net_rejected(self):
        circuit = gen.counter(3)
        with pytest.raises(CircuitError):
            ReachSpace(circuit, ["s0", "s1", "en"])  # s2 missing

    def test_unknown_slot_rejected(self):
        circuit = gen.counter(3)
        with pytest.raises(CircuitError):
            ReachSpace(circuit, ["s0", "s1", "s2", "en", "ghost"])

    def test_initial_point_and_chi(self):
        circuit = gen.token_ring(3)  # init: s0=1, others 0
        space = ReachSpace(circuit)
        chi = space.initial_chi()
        assert space.states_of(chi) == 1
        index = space.state_order.index("s0")
        assert space.initial_point[index] is True

    def test_t_to_s_rename(self):
        circuit = gen.counter(2)
        space = ReachSpace(circuit)
        bdd = space.bdd
        f = bdd.and_(bdd.var(space.t_vars[0]), bdd.var(space.t_vars[1]))
        renamed = space.t_to_s(f)
        assert renamed == bdd.and_(
            bdd.var(space.s_vars[0]), bdd.var(space.s_vars[1])
        )


class TestRunMonitor:
    def test_memory_limit(self):
        circuit = gen.counter(2)
        space = ReachSpace(circuit)
        monitor = RunMonitor(space.bdd, ReachLimits(max_live_nodes=1))
        with pytest.raises(ResourceLimitError) as info:
            monitor.checkpoint((), 1)
        assert info.value.kind == "memory"

    def test_time_limit(self):
        circuit = gen.counter(2)
        space = ReachSpace(circuit)
        monitor = RunMonitor(space.bdd, ReachLimits(max_seconds=0.0))
        with pytest.raises(ResourceLimitError) as info:
            monitor.checkpoint((), 1)
        assert info.value.kind == "time"

    def test_iteration_limit(self):
        circuit = gen.counter(2)
        space = ReachSpace(circuit)
        monitor = RunMonitor(space.bdd, ReachLimits(max_iterations=3))
        monitor.checkpoint((), 2)
        with pytest.raises(ResourceLimitError) as info:
            monitor.checkpoint((), 3)
        assert info.value.kind == "iterations"

    def test_no_limits(self):
        circuit = gen.counter(2)
        space = ReachSpace(circuit)
        monitor = RunMonitor(space.bdd, None)
        # Allocation is far below the growth floor, so the checkpoint
        # skips the collection (and the live count) entirely.
        monitor.checkpoint((), 100)
        assert monitor.peak_live == 0
        # Dropping the floor forces a collection at the next checkpoint,
        # which records the live peak.
        monitor.gc_floor = 0
        monitor.checkpoint((), 101)
        assert monitor.peak_live > 0


class TestReachResult:
    def test_status_strings(self):
        ok = ReachResult("bfv", "c", "S1", completed=True, seconds=1.25)
        assert ok.status == "1.25"
        to = ReachResult("bfv", "c", "S1", completed=False, failure="time")
        assert to.status == "T.O."
        mo = ReachResult("tr", "c", "S1", completed=False, failure="memory")
        assert mo.status == "M.O."
        io = ReachResult(
            "tr", "c", "S1", completed=False, failure="iterations"
        )
        assert io.status == "I.O."

    def test_every_harness_failure_code_has_a_label(self):
        # The engines emit time/memory/iterations/depth; the supervisor
        # adds crash; the batch scheduler adds cancelled (speculative
        # rungs killed after an earlier rung completed).  Every code
        # must render, never raise.
        assert set(FAILURE_LABELS) == {
            "time",
            "memory",
            "iterations",
            "depth",
            "crash",
            "cancelled",
        }
        for code, label in FAILURE_LABELS.items():
            result = ReachResult("bfv", "c", "S1", completed=False, failure=code)
            assert result.status == label
            assert label  # non-empty, printable

    def test_unknown_or_missing_failure_still_renders(self):
        unknown = ReachResult(
            "bfv", "c", "S1", completed=False, failure="meteor"
        )
        assert unknown.status == "FAIL"
        missing = ReachResult("bfv", "c", "S1", completed=False)
        assert missing.status == "FAIL"

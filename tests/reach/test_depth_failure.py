"""Engines convert stray RecursionError into a 'depth' resource failure."""


from repro.circuits import generators as gen
from repro.reach.bfv_engine import bfv_reachability
from repro.reach.common import ReachSpace


def test_recursion_error_maps_to_depth_failure():
    circuit = gen.counter(3)
    space = ReachSpace(circuit)

    def blow_up(*_args, **_kwargs):
        raise RecursionError

    space.bdd.and_ = blow_up
    space.bdd.or_ = blow_up
    result = bfv_reachability(circuit, space=space, count_states=False)
    assert not result.completed
    assert result.failure == "depth"
    assert result.status == "D.O."
    assert "cache" in result.extra


def test_cache_stats_attached_on_success():
    circuit = gen.counter(3)
    result = bfv_reachability(circuit, count_states=False)
    assert result.completed
    cache = result.extra["cache"]
    assert cache["total"]["hits"] + cache["total"]["misses"] > 0
    assert 0.0 <= cache["total"]["hit_rate"] <= 1.0

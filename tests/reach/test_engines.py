"""End-to-end engine tests: the six engines vs the explicit oracle.

Every engine must compute exactly the explicit-BFS reachable set on
every circuit family, under several order families, with and without
the selection heuristic — and resource budgets must surface as the
paper's T.O. / M.O. outcomes.
"""

import pytest

from repro.circuits import generators as gen
from repro.circuits.iscas import s27
from repro.order import FAMILIES, order_for
from repro.reach import (
    ENGINES,
    ReachLimits,
    bfv_reachability,
    cbm_reachability,
    conj_reachability,
    tr_reachability,
)
from repro.sim import explicit_reachable


def reached_points(result):
    """Decode a completed run's reached set as latch-declaration tuples."""
    if "reached_states" in result.extra:
        # The non-BDD backend engines enumerate declaration-order
        # tuples directly.
        return set(result.extra["reached_states"])
    space = result.extra["space"]
    if "reached" in result.extra:
        points = set(result.extra["reached"].enumerate())
    elif "reached_cd" in result.extra:
        points = set(result.extra["reached_cd"].to_bfv().enumerate())
    else:
        from repro.bfv import from_characteristic

        vec = from_characteristic(
            space.bdd, space.s_vars, result.extra["reached_chi"]
        )
        points = set(vec.enumerate())
    declaration = list(space.circuit.latches)
    index = {net: i for i, net in enumerate(space.state_order)}
    return {
        tuple(point[index[net]] for net in declaration) for point in points
    }


CIRCUITS = [
    ("counter", lambda: gen.counter(4)),
    ("mod_counter", lambda: gen.mod_counter(4, 11)),
    ("lfsr", lambda: gen.lfsr(5)),
    ("johnson", lambda: gen.johnson(5)),
    ("ring", lambda: gen.token_ring(4)),
    ("shift", lambda: gen.shift_register(4)),
    ("coupled", lambda: gen.coupled_pairs(3)),
    ("fifo", lambda: gen.fifo_controller(2)),
    ("arbiter", lambda: gen.round_robin_arbiter(3)),
    ("lock", lambda: gen.combination_lock([True, True, False])),
    ("traffic", gen.traffic_light),
    ("rctl", lambda: gen.random_control(7, seed=11)),
    ("shadow", lambda: gen.shadow_datapath(3, 2)),
    ("s27", s27),
]


class TestEnginesMatchOracle:
    @pytest.mark.parametrize("engine", list(ENGINES))
    @pytest.mark.parametrize(
        "name,factory", CIRCUITS, ids=[c[0] for c in CIRCUITS]
    )
    def test_engine_vs_explicit(self, engine, name, factory):
        circuit = factory()
        truth = explicit_reachable(circuit)
        result = ENGINES[engine](circuit)
        assert result.completed
        points = reached_points(result)
        if engine == "zono" and not result.extra["exact"]:
            # The zonotope engine's contract is containment: a sound,
            # flagged over-approximation, never an under-approximation.
            assert truth <= points
            assert result.num_states == len(points) >= len(truth)
        else:
            assert result.num_states == len(truth)
            assert points == truth
        assert result.iterations >= 1
        assert result.peak_live_nodes > 0


class TestOrderFamilies:
    @pytest.mark.parametrize("family", list(FAMILIES))
    def test_all_orders_same_set(self, family):
        circuit = gen.fifo_controller(2)
        truth = explicit_reachable(circuit)
        slots = order_for(circuit, family)
        for engine in ("bfv", "tr"):
            result = ENGINES[engine](circuit, slots=slots, order_name=family)
            assert result.completed, (engine, family)
            assert reached_points(result) == truth
            assert result.order == family


class TestSelectionHeuristic:
    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_heuristic_does_not_change_answer(self, engine):
        circuit = gen.lfsr(5)
        truth = explicit_reachable(circuit)
        for flag in (True, False):
            result = ENGINES[engine](circuit, selection_heuristic=flag)
            points = reached_points(result)
            if engine == "zono" and not result.extra["exact"]:
                assert truth <= points
            else:
                assert points == truth


class TestResourceLimits:
    def test_time_budget_reports_timeout(self):
        circuit = gen.counter(6)
        result = bfv_reachability(
            circuit, limits=ReachLimits(max_seconds=0.0)
        )
        assert not result.completed
        assert result.failure == "time"
        assert result.status == "T.O."

    def test_node_budget_reports_memory_out(self):
        circuit = gen.shift_register(6)
        result = tr_reachability(
            circuit, limits=ReachLimits(max_live_nodes=5)
        )
        assert not result.completed
        assert result.status == "M.O."

    def test_iteration_budget(self):
        circuit = gen.counter(6)
        result = tr_reachability(
            circuit, limits=ReachLimits(max_iterations=2)
        )
        assert not result.completed
        assert result.failure == "iterations"


class TestConversionAccounting:
    def test_cbm_reports_conversion_time(self):
        circuit = gen.lfsr(5)
        result = cbm_reachability(circuit)
        assert result.completed
        assert result.conversion_seconds >= 0.0
        assert result.conversion_seconds <= result.seconds

    def test_bfv_reports_representation_size(self):
        circuit = gen.shadow_datapath(3, 1)
        bfv = bfv_reachability(circuit)
        tr = tr_reachability(circuit)
        assert bfv.reached_size > 0
        assert tr.reached_size > 0
        assert bfv.num_states == tr.num_states


class TestSchedules:
    @pytest.mark.parametrize("schedule", ["support", "size", "fixed"])
    def test_quantification_schedules_agree(self, schedule):
        circuit = gen.fifo_controller(1)
        truth = explicit_reachable(circuit)
        result = bfv_reachability(circuit, schedule=schedule)
        assert reached_points(result) == truth


class TestCountStatesFlag:
    def test_disabled_count(self):
        circuit = gen.counter(3)
        result = bfv_reachability(circuit, count_states=False)
        assert result.completed
        assert result.num_states is None


class TestCBMImageMethods:
    """The two historical Figure-1 image computations ([6] vs [7])."""

    @pytest.mark.parametrize("method", ["simulate", "constrain"])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gen.lfsr(5),
            lambda: gen.fifo_controller(2),
            lambda: gen.coupled_pairs(3),
            lambda: gen.random_control(7, seed=11),
        ],
        ids=["lfsr", "fifo", "coupled", "rctl"],
    )
    def test_methods_match_oracle(self, method, factory):
        circuit = factory()
        truth = explicit_reachable(circuit)
        result = cbm_reachability(circuit, image_method=method)
        assert result.completed
        assert result.num_states == len(truth)
        assert reached_points(result) == truth

    def test_constrain_method_skips_chi_to_bfv(self):
        # The [7] flow has no chi -> BFV conversion; only the BFV -> chi
        # direction contributes to the conversion time.
        circuit = gen.lfsr(6)
        simulate = cbm_reachability(circuit, image_method="simulate")
        constrain = cbm_reachability(circuit, image_method="constrain")
        assert simulate.num_states == constrain.num_states
        assert constrain.conversion_seconds <= simulate.conversion_seconds

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            cbm_reachability(gen.counter(2), image_method="bogus")

"""Multi-initial-state reachability tests (all six engines)."""

import pytest

from repro.circuits import generators as gen
from repro.errors import CircuitError
from repro.reach import ENGINES, ReachSpace
from repro.sim import explicit_reachable

from .test_engines import reached_points


class TestInitialPointSets:
    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_two_seeds(self, engine):
        circuit = gen.johnson(4)
        # one reachable-from-zero seed plus one off-orbit seed
        seeds = [
            (False, False, False, False),
            (True, False, True, False),
        ]
        truth = explicit_reachable(circuit, initial_states=seeds)
        result = ENGINES[engine](circuit, initial_points=seeds)
        assert result.completed
        assert reached_points(result) == truth
        assert result.num_states == len(truth)

    @pytest.mark.parametrize("engine", ["bfv", "tr"])
    def test_lfsr_zero_and_seed(self, engine):
        circuit = gen.lfsr(4)
        seeds = [(False,) * 4, (True,) + (False,) * 3]
        truth = explicit_reachable(circuit, initial_states=seeds)
        result = ENGINES[engine](circuit, initial_points=seeds)
        assert result.num_states == len(truth) == 16

    def test_default_matches_declared_init(self):
        circuit = gen.token_ring(4)
        explicit = ENGINES["bfv"](
            circuit, initial_points=[circuit.initial_state]
        )
        default = ENGINES["bfv"](circuit)
        assert reached_points(explicit) == reached_points(default)

    def test_width_mismatch_rejected(self):
        circuit = gen.counter(3)
        with pytest.raises(CircuitError):
            ENGINES["bfv"](circuit, initial_points=[(True,)])

    def test_empty_set_rejected(self):
        circuit = gen.counter(3)
        with pytest.raises(CircuitError):
            ENGINES["tr"](circuit, initial_points=[])


class TestSpaceHelpers:
    def test_point_set_reorders_to_components(self):
        circuit = gen.counter(3)
        space = ReachSpace(circuit, ["s2", "en", "s0", "s1"])
        points = space.initial_point_set([(True, False, False)])
        # declaration order is s0, s1, s2; component order is s2, s0, s1
        assert points == [(False, True, False)]

    def test_initial_chi_counts(self):
        circuit = gen.counter(3)
        space = ReachSpace(circuit)
        chi = space.initial_chi(
            [(True, False, False), (False, True, False)]
        )
        assert space.states_of(chi) == 2

"""IWLS95-style partitioned relation tests: image correctness."""

import random

import pytest

from repro.analysis import check_bdd_structure, check_refcounts
from repro.bdd import BDD
from repro.circuits import generators as gen
from repro.reach import PartitionedRelation, ReachSpace
from repro.sim import SymbolicSimulator


def build_relation_parts(circuit, space):
    bdd = space.bdd
    simulator = SymbolicSimulator(bdd, circuit)
    deltas = simulator.transition_functions(
        dict(space.input_var), dict(space.state_var)
    )
    by_net = dict(zip(circuit.latches, deltas))
    parts = [
        bdd.equiv(bdd.var(space.next_var[n]), by_net[n])
        for n in space.state_order
    ]
    return parts


def monolithic_image(space, parts, from_set):
    bdd = space.bdd
    relation = bdd.conjoin(parts)
    quantify = list(space.s_vars) + list(space.x_vars)
    return bdd.exists(quantify, bdd.and_(from_set, relation))


@pytest.mark.parametrize(
    "factory",
    [
        lambda: gen.counter(3),
        lambda: gen.lfsr(4),
        lambda: gen.fifo_controller(1),
        lambda: gen.random_control(5, seed=8),
        lambda: gen.coupled_pairs(2),
    ],
    ids=["counter", "lfsr", "fifo", "rctl", "coupled"],
)
@pytest.mark.parametrize("threshold", [1, 100, 10_000])
def test_partitioned_image_matches_monolithic(factory, threshold):
    circuit = factory()
    space = ReachSpace(circuit)
    bdd = space.bdd
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(
        bdd, parts, quantify, cluster_threshold=threshold
    )
    rng = random.Random(0)
    # several random from-sets, including the initial state
    from_sets = [space.initial_chi()]
    for _ in range(4):
        cube = {
            v: rng.random() < 0.5
            for v in rng.sample(space.s_vars, len(space.s_vars) // 2 or 1)
        }
        from_sets.append(bdd.cube(cube))
    for from_set in from_sets:
        assert relation.image(from_set) == monolithic_image(
            space, parts, from_set
        )


def test_cluster_threshold_controls_cluster_count():
    circuit = gen.random_control(6, seed=4)
    space = ReachSpace(circuit)
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    fine = PartitionedRelation(space.bdd, parts, quantify, cluster_threshold=1)
    coarse = PartitionedRelation(
        space.bdd, parts, quantify, cluster_threshold=1_000_000
    )
    assert len(fine.clusters) >= len(coarse.clusters)
    assert len(coarse.clusters) == 1


def test_residual_quantification_of_unused_inputs():
    # An input that feeds no latch must still be quantified away.
    circuit = gen.counter(2)
    circuit2 = gen.counter(2)
    del circuit2
    space = ReachSpace(circuit)
    bdd = space.bdd
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(bdd, parts, quantify)
    # from-set mentioning the input variable
    from_set = bdd.and_(space.initial_chi(), bdd.var(space.x_vars[0]))
    image = relation.image(from_set)
    assert set(bdd.support(image)) <= set(space.t_vars)


def test_release_drops_references():
    circuit = gen.counter(2)
    space = ReachSpace(circuit)
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(space.bdd, parts, quantify)
    before = len(space.bdd._extref)
    relation.release()
    assert len(space.bdd._extref) <= before


class TestEdgeCases:
    """Degenerate shapes the saturation engines lean on."""

    def test_single_partition_relation(self):
        # One latch, one conjunct: a single cluster whose image still
        # matches the monolithic computation on every singleton state.
        circuit = gen.counter(1)
        space = ReachSpace(circuit)
        bdd = space.bdd
        parts = build_relation_parts(circuit, space)
        assert len(parts) == 1
        quantify = list(space.s_vars) + list(space.x_vars)
        relation = PartitionedRelation(bdd, parts, quantify)
        assert len(relation.clusters) == 1
        assert len(relation.schedule) == 1
        for value in (True, False):
            from_set = bdd.cube({space.s_vars[0]: value})
            assert relation.image(from_set) == monolithic_image(
                space, parts, from_set
            )

    def test_empty_quantification_schedule(self):
        # No variables to quantify: the "image" degenerates to
        # from_set AND T, and every schedule entry carries no dying
        # variables.
        circuit = gen.counter(2)
        space = ReachSpace(circuit)
        bdd = space.bdd
        parts = build_relation_parts(circuit, space)
        relation = PartitionedRelation(bdd, parts, quantify=[])
        assert all(dying == [] for _, dying in relation.schedule)
        assert relation.residual_quantify == []
        from_set = space.initial_chi()
        expected = bdd.and_(from_set, bdd.conjoin(parts))
        assert relation.image(from_set) == expected

    def test_pre_image_with_input_variables(self):
        # pre_image must existentially quantify the primary inputs as
        # well as the next-state variables: a state belongs to the
        # pre-image if SOME input drives it into the target.
        circuit = gen.counter(3)  # enable input gates the increment
        space = ReachSpace(circuit)
        bdd = space.bdd
        parts = build_relation_parts(circuit, space)
        quantify = list(space.s_vars) + list(space.x_vars)
        relation = PartitionedRelation(bdd, parts, quantify)
        target = bdd.cube({t: False for t in space.t_vars})  # t = 0
        with_inputs = relation.pre_image(
            target, space.t_vars, space.x_vars
        )
        monolithic = bdd.exists(
            list(space.t_vars) + list(space.x_vars),
            bdd.and_(bdd.conjoin(parts), target),
        )
        assert with_inputs == monolithic
        # 0 stays at 0 when the enable is low, so 0 is its own
        # predecessor under SOME input — but not under ALL inputs:
        # omitting the inputs from the quantifier leaves them free.
        zero = bdd.cube({s: False for s in space.s_vars})
        assert bdd.and_(with_inputs, zero) == zero
        without_inputs = relation.pre_image(target, space.t_vars)
        assert set(bdd.support(without_inputs)) & set(space.x_vars)

    def test_release_refcount_hygiene_under_sanitizer(self):
        # Build, use, and release a relation, then run the sanitizer's
        # structure + refcount audits: no dangling external references,
        # no leaked cluster pins.
        circuit = gen.fifo_controller(1)
        space = ReachSpace(circuit)
        bdd = space.bdd
        parts = build_relation_parts(circuit, space)
        quantify = list(space.s_vars) + list(space.x_vars)
        pinned_before = len(bdd._extref)
        relation = PartitionedRelation(bdd, parts, quantify)
        relation.image(space.initial_chi())
        check_bdd_structure(bdd)
        check_refcounts(bdd, roots=relation.clusters)
        relation.release()
        assert len(bdd._extref) <= pinned_before
        check_bdd_structure(bdd)
        check_refcounts(bdd)
        # The clusters survive GC only if something else pins them.
        bdd.collect_garbage()
        check_bdd_structure(bdd)
        check_refcounts(bdd)

    def test_release_is_idempotent_on_fresh_relations(self):
        # Releasing two relations over the same parts must not
        # double-free: each pins its own references.
        circuit = gen.counter(2)
        space = ReachSpace(circuit)
        parts = build_relation_parts(circuit, space)
        quantify = list(space.s_vars) + list(space.x_vars)
        first = PartitionedRelation(space.bdd, parts, quantify)
        second = PartitionedRelation(space.bdd, parts, quantify)
        image = first.image(space.initial_chi())
        first.release()
        assert second.image(space.initial_chi()) == image
        second.release()
        check_refcounts(space.bdd)

"""IWLS95-style partitioned relation tests: image correctness."""

import random

import pytest

from repro.bdd import BDD
from repro.circuits import generators as gen
from repro.reach import PartitionedRelation, ReachSpace
from repro.sim import SymbolicSimulator


def build_relation_parts(circuit, space):
    bdd = space.bdd
    simulator = SymbolicSimulator(bdd, circuit)
    deltas = simulator.transition_functions(
        dict(space.input_var), dict(space.state_var)
    )
    by_net = dict(zip(circuit.latches, deltas))
    parts = [
        bdd.equiv(bdd.var(space.next_var[n]), by_net[n])
        for n in space.state_order
    ]
    return parts


def monolithic_image(space, parts, from_set):
    bdd = space.bdd
    relation = bdd.conjoin(parts)
    quantify = list(space.s_vars) + list(space.x_vars)
    return bdd.exists(quantify, bdd.and_(from_set, relation))


@pytest.mark.parametrize(
    "factory",
    [
        lambda: gen.counter(3),
        lambda: gen.lfsr(4),
        lambda: gen.fifo_controller(1),
        lambda: gen.random_control(5, seed=8),
        lambda: gen.coupled_pairs(2),
    ],
    ids=["counter", "lfsr", "fifo", "rctl", "coupled"],
)
@pytest.mark.parametrize("threshold", [1, 100, 10_000])
def test_partitioned_image_matches_monolithic(factory, threshold):
    circuit = factory()
    space = ReachSpace(circuit)
    bdd = space.bdd
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(
        bdd, parts, quantify, cluster_threshold=threshold
    )
    rng = random.Random(0)
    # several random from-sets, including the initial state
    from_sets = [space.initial_chi()]
    for _ in range(4):
        cube = {
            v: rng.random() < 0.5
            for v in rng.sample(space.s_vars, len(space.s_vars) // 2 or 1)
        }
        from_sets.append(bdd.cube(cube))
    for from_set in from_sets:
        assert relation.image(from_set) == monolithic_image(
            space, parts, from_set
        )


def test_cluster_threshold_controls_cluster_count():
    circuit = gen.random_control(6, seed=4)
    space = ReachSpace(circuit)
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    fine = PartitionedRelation(space.bdd, parts, quantify, cluster_threshold=1)
    coarse = PartitionedRelation(
        space.bdd, parts, quantify, cluster_threshold=1_000_000
    )
    assert len(fine.clusters) >= len(coarse.clusters)
    assert len(coarse.clusters) == 1


def test_residual_quantification_of_unused_inputs():
    # An input that feeds no latch must still be quantified away.
    circuit = gen.counter(2)
    circuit2 = gen.counter(2)
    del circuit2
    space = ReachSpace(circuit)
    bdd = space.bdd
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(bdd, parts, quantify)
    # from-set mentioning the input variable
    from_set = bdd.and_(space.initial_chi(), bdd.var(space.x_vars[0]))
    image = relation.image(from_set)
    assert set(bdd.support(image)) <= set(space.t_vars)


def test_release_drops_references():
    circuit = gen.counter(2)
    space = ReachSpace(circuit)
    parts = build_relation_parts(circuit, space)
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(space.bdd, parts, quantify)
    before = len(space.bdd._extref)
    relation.release()
    assert len(space.bdd._extref) <= before

"""Pre-image (backward step) tests against the explicit oracle."""

import itertools

import pytest

from repro.circuits import generators as gen
from repro.circuits.iscas import s27
from repro.reach import PartitionedRelation, ReachSpace
from repro.sim import ConcreteSimulator, SymbolicSimulator


def build(circuit, cluster_threshold=200):
    space = ReachSpace(circuit)
    bdd = space.bdd
    simulator = SymbolicSimulator(bdd, circuit)
    deltas = simulator.transition_functions(
        dict(space.input_var), dict(space.state_var)
    )
    by_net = dict(zip(circuit.latches, deltas))
    parts = [
        bdd.equiv(bdd.var(space.next_var[n]), by_net[n])
        for n in space.state_order
    ]
    quantify = list(space.s_vars) + list(space.x_vars)
    relation = PartitionedRelation(
        bdd, parts, quantify, cluster_threshold=cluster_threshold
    )
    return space, relation


def explicit_predecessors(circuit, targets):
    """All states with some one-step successor in ``targets``."""
    simulator = ConcreteSimulator(circuit)
    nets = circuit.state_nets
    predecessors = set()
    for state in itertools.product([False, True], repeat=len(nets)):
        for inputs in itertools.product(
            [False, True], repeat=len(circuit.inputs)
        ):
            env = dict(zip(circuit.inputs, inputs))
            if simulator.step(state, env) in targets:
                predecessors.add(state)
                break
    return predecessors


@pytest.mark.parametrize(
    "factory,target_states",
    [
        (lambda: gen.counter(3), [(True, True, True)]),
        (lambda: gen.johnson(4), [(True, True, False, False)]),
        (lambda: gen.token_ring(3), [(False, False, True)]),
        (s27, [(False, True, False), (True, False, False)]),
    ],
    ids=["counter", "johnson", "ring", "s27"],
)
def test_pre_image_matches_oracle(factory, target_states):
    circuit = factory()
    space, relation = build(circuit)
    bdd = space.bdd
    declaration = list(circuit.latches)
    index_of = {net: declaration.index(net) for net in space.state_order}
    # target over next-state (t) variables
    target = bdd.false
    for state in target_states:
        cube = {
            space.next_var[net]: state[index_of[net]]
            for net in space.state_order
        }
        target = bdd.or_(target, bdd.cube(cube))
    pre = relation.pre_image(target, space.t_vars, space.x_vars)
    assert set(bdd.support(pre)) <= set(space.s_vars)
    expected = explicit_predecessors(circuit, set(target_states))
    got = set()
    for state in itertools.product(
        [False, True], repeat=len(declaration)
    ):
        assignment = {
            space.state_var[net]: state[index_of[net]]
            for net in space.state_order
        }
        if bdd.evaluate(pre, assignment):
            got.add(state)
    assert got == expected


def test_pre_image_of_unreachable_target():
    # The all-zero LFSR state has only itself as predecessor.
    circuit = gen.lfsr(4)
    space, relation = build(circuit)
    bdd = space.bdd
    zero = bdd.cube({v: False for v in space.t_vars})
    pre = relation.pre_image(zero, space.t_vars, space.x_vars)
    assert pre == bdd.cube({v: False for v in space.s_vars})


def test_forward_backward_duality():
    # s is in pre_image({t}) iff t is in image({s}).
    circuit = gen.traffic_light()
    space, relation = build(circuit)
    bdd = space.bdd
    nets = space.state_order
    states = list(itertools.product([False, True], repeat=len(nets)))
    for s in states[:6]:
        s_cube = bdd.cube(dict(zip(space.s_vars, s)))
        forward = relation.image(s_cube)  # over t vars
        for t in states:
            t_cube = bdd.cube(dict(zip(space.t_vars, t)))
            in_image = bdd.and_(forward, t_cube) != bdd.false
            pre = relation.pre_image(t_cube, space.t_vars, space.x_vars)
            in_pre = bdd.evaluate(pre, dict(zip(space.s_vars, s)))
            assert in_image == in_pre, (s, t)

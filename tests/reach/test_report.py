"""Report-formatting tests (Table 2 / Table 3 renderers)."""

from repro.reach import format_table2, format_table3
from repro.reach.common import ReachResult


def result(engine, circuit, order, **kwargs):
    defaults = dict(completed=True, seconds=1.0, peak_live_nodes=1500)
    defaults.update(kwargs)
    return ReachResult(engine=engine, circuit=circuit, order=order, **defaults)


class TestTable2:
    def test_basic_layout(self):
        results = [
            result("tr", "s3271s", "S1"),
            result("bfv", "s3271s", "S1", seconds=0.5, peak_live_nodes=300),
            result(
                "tr", "s3271s", "O", completed=False, failure="memory"
            ),
            result("bfv", "s3271s", "O"),
        ]
        text = format_table2(results)
        lines = text.splitlines()
        assert "Name" in lines[0] and "Order" in lines[0]
        assert "tr time(s)" in lines[0]
        assert any("M.O." in line for line in lines)
        assert any("0.50" in line for line in lines)
        # peak printed in thousands
        assert any("1.5" in line for line in lines)

    def test_missing_engine_cell(self):
        text = format_table2([result("tr", "c", "S1")], engines=("tr", "bfv"))
        assert "-" in text

    def test_row_order_preserved(self):
        results = [
            result("tr", "b_circuit", "S1"),
            result("tr", "a_circuit", "S1"),
        ]
        text = format_table2(results, engines=("tr",))
        assert text.index("b_circuit") < text.index("a_circuit")


class TestTable3:
    def test_layout(self):
        sizes = {
            "S1": {"chi": 5000, "bfv": 100},
            "D": {"chi": 4000, "bfv": 120},
        }
        text = format_table3(sizes)
        lines = text.splitlines()
        assert lines[0].startswith("Order")
        assert any(line.startswith("Char.Fn") for line in lines)
        assert any(line.startswith("BFV") for line in lines)
        assert "5000" in text and "120" in text

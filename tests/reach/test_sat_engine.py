"""Saturation engine family: correctness, telemetry, and kill-resume.

The differential campaign in ``tests/test_fuzz.py`` already pins the
six-engine agreement contract; this file exercises the knobs specific
to the ``sat`` / ``bfv-sat`` engines — split-input cofactoring, the
chaining schedules, frontier-avoidance off, the saturation telemetry —
and the harness acceptance criterion that matters most for chained
engines: a checkpoint cut *mid-chain* (between fires, inside a macro
round) must resume to exactly the oracle's reached set.
"""

import glob

import pytest

from repro.bdd import BDD
from repro.circuits import generators as gen
from repro.errors import CircuitError
from repro.harness import AttemptSpec, run_attempt
from repro.reach import ENGINES, bfv_sat_reachability, sat_reachability
from repro.reach.sat_engine import split_input_vars, sweep_order
from repro.sim import explicit_reachable

from .test_engines import reached_points

SAT_ENGINES = {"sat": sat_reachability, "bfv-sat": bfv_sat_reachability}

#: Small circuits with several inputs, so split_inputs > 0 actually
#: produces multiple disjuncts and multi-fire rounds.
CIRCUITS = [
    ("counter", lambda: gen.counter(4)),
    ("fifo", lambda: gen.fifo_controller(2)),
    ("arbiter", lambda: gen.round_robin_arbiter(3)),
    ("rctl", lambda: gen.random_control(6, seed=3)),
]


class TestConfigurations:
    """Every knob combination still computes the exact reached set."""

    @pytest.mark.parametrize("engine", list(SAT_ENGINES))
    @pytest.mark.parametrize("split", (0, 1, 2))
    @pytest.mark.parametrize(
        "name,factory", CIRCUITS, ids=[c[0] for c in CIRCUITS]
    )
    def test_split_inputs_vs_oracle(self, engine, split, name, factory):
        circuit = factory()
        truth = explicit_reachable(circuit)
        result = SAT_ENGINES[engine](circuit, split_inputs=split)
        assert result.completed
        assert result.num_states == len(truth)
        assert reached_points(result) == truth
        saturation = result.extra["saturation"]
        assert saturation["split_vars"] <= split
        assert saturation["partitions"] == 2 ** saturation["split_vars"]

    @pytest.mark.parametrize("engine", list(SAT_ENGINES))
    @pytest.mark.parametrize("schedule", ("static", "round-robin"))
    def test_chain_schedules_vs_oracle(self, engine, schedule):
        circuit = gen.round_robin_arbiter(3)
        truth = explicit_reachable(circuit)
        result = SAT_ENGINES[engine](
            circuit, split_inputs=2, chain_schedule=schedule
        )
        assert result.completed
        assert reached_points(result) == truth
        assert result.extra["saturation"]["schedule"] == schedule

    @pytest.mark.parametrize("engine", list(SAT_ENGINES))
    def test_frontier_avoidance_off_vs_oracle(self, engine):
        circuit = gen.fifo_controller(2)
        truth = explicit_reachable(circuit)
        result = SAT_ENGINES[engine](
            circuit, split_inputs=2, selection_heuristic=False
        )
        assert result.completed
        assert reached_points(result) == truth
        # Without frontier-avoidance nothing is ever skipped.
        assert result.extra["saturation"]["skips"] == [0] * (
            result.extra["saturation"]["partitions"]
        )

    @pytest.mark.parametrize("engine", list(SAT_ENGINES))
    def test_bad_schedule_raises(self, engine):
        with pytest.raises(CircuitError, match="chain schedule"):
            SAT_ENGINES[engine](gen.counter(3), chain_schedule="zigzag")


class TestDepthContract:
    """Macro rounds are bounded by the breadth-first depth."""

    @pytest.mark.parametrize("engine", list(SAT_ENGINES))
    @pytest.mark.parametrize(
        "name,factory", CIRCUITS, ids=[c[0] for c in CIRCUITS]
    )
    def test_rounds_within_bfs_depth(self, engine, name, factory):
        circuit = factory()
        depth = ENGINES["tr"](circuit).iterations
        result = SAT_ENGINES[engine](circuit, split_inputs=2)
        assert 1 <= result.iterations <= depth


class TestTelemetry:
    @pytest.mark.parametrize("engine", list(SAT_ENGINES))
    def test_saturation_extra_shape(self, engine):
        result = SAT_ENGINES[engine](gen.counter(4), split_inputs=2)
        saturation = result.extra["saturation"]
        n = saturation["partitions"]
        assert saturation["schedule"] in ("static", "round-robin")
        assert sorted(saturation["order"]) == list(range(n))
        assert len(saturation["fires"]) == n
        assert len(saturation["skips"]) == n
        assert saturation["total_fires"] == sum(saturation["fires"])
        assert saturation["total_fires"] >= 1
        assert all(f >= 0 for f in saturation["fires"])


class TestHelpers:
    def test_split_input_vars_ranks_by_occurrence(self):
        # b feeds both latches, a only one: b splits first.
        bdd = BDD(["a", "b", "s0", "s1"])
        a, b = bdd.var("a"), bdd.var("b")
        s0, s1 = bdd.var("s0"), bdd.var("s1")
        deltas = {"l0": bdd.and_(b, s0), "l1": bdd.and_(bdd.and_(a, b), s1)}
        split, unsplit = split_input_vars(
            bdd, deltas, ["l0", "l1"], [bdd.var_index("a"), bdd.var_index("b")], 1
        )
        assert split == [bdd.var_index("b")]
        assert unsplit == [bdd.var_index("a")]

    def test_split_cap_zero_keeps_everything_unsplit(self):
        bdd = BDD(["a", "s0"])
        deltas = {"l0": bdd.and_(bdd.var("a"), bdd.var("s0"))}
        split, unsplit = split_input_vars(
            bdd, deltas, ["l0"], [bdd.var_index("a")], 0
        )
        assert split == []
        assert unsplit == [bdd.var_index("a")]

    def test_sweep_order_schedules(self):
        order = [2, 0, 1]
        assert sweep_order(order, 5, "static") == [2, 0, 1]
        assert sweep_order(order, 1, "round-robin") == [2, 0, 1]
        assert sweep_order(order, 2, "round-robin") == [0, 1, 2]
        assert sweep_order(order, 3, "round-robin") == [1, 2, 0]
        assert sweep_order(order, 4, "round-robin") == [2, 0, 1]


class TestMidChainResume:
    """Kill-resume soak: cut the run at every fire tick, resume, match.

    The saturation engines checkpoint on the *fire* tick, so a budget
    of ``k`` iterations interrupts them after the k-th chained image
    step — possibly mid-round, with uneven per-partition pending sets.
    The serialized chaining position must make the resume exact.
    """

    @pytest.mark.parametrize("engine", ("sat", "bfv-sat"))
    def test_resume_at_every_fire_tick(self, engine, tmp_path):
        circuit_name = "traffic"
        truth = explicit_reachable(gen.traffic_light())
        total = run_attempt(
            AttemptSpec(circuit=circuit_name, engine=engine)
        )
        assert total.completed
        total_fires = total.extra["saturation"]["total_fires"]
        assert total_fires >= 2  # otherwise nothing mid-chain to test

        for cut in range(1, total_fires):
            ckpt_dir = tmp_path / ("%s-%d" % (engine, cut))
            interrupted = run_attempt(
                AttemptSpec(
                    circuit=circuit_name,
                    engine=engine,
                    max_iterations=cut,
                    checkpoint_dir=str(ckpt_dir),
                )
            )
            assert not interrupted.completed
            assert interrupted.failure == "iterations"
            assert glob.glob(str(ckpt_dir / "*.rbdd"))
            resumed = run_attempt(
                AttemptSpec(
                    circuit=circuit_name,
                    engine=engine,
                    checkpoint_dir=str(ckpt_dir),
                    resume=True,
                )
            )
            assert resumed.completed, "cut at fire %d" % cut
            assert resumed.extra["resumed_from"] == cut
            assert resumed.num_states == len(truth)
            assert resumed.num_states == total.num_states

    @pytest.mark.parametrize("engine", ("sat", "bfv-sat"))
    def test_disconnect_mid_chain_then_resume(self, engine, tmp_path):
        # A client disconnect (cancellation fault) instead of a clean
        # budget stop: same resume contract.
        baseline = run_attempt(AttemptSpec(circuit="traffic", engine=engine))
        interrupted = run_attempt(
            AttemptSpec(
                circuit="traffic",
                engine=engine,
                checkpoint_dir=str(tmp_path),
                faults=[{"kind": "client_disconnect", "at_iteration": 2}],
            )
        )
        assert not interrupted.completed
        resumed = run_attempt(
            AttemptSpec(
                circuit="traffic",
                engine=engine,
                checkpoint_dir=str(tmp_path),
                resume=True,
            )
        )
        assert resumed.completed
        assert resumed.num_states == baseline.num_states
        assert resumed.iterations >= 1

"""Serve test fixtures: a real ReachServer on a background event loop.

The integration tests talk to the server exactly like a client would —
over a TCP socket with the blocking :class:`repro.serve.ServeClient` —
while the server runs its asyncio loop in a daemon thread of the test
process.  Worker attempts still fork real supervised children, so these
tests exercise the full serve → pool → supervisor → engine stack.
"""

from __future__ import annotations

import asyncio
import os
import threading

import pytest

from repro.harness.faults import SERVE_PID_ENV_VAR
from repro.serve import ReachServer, ServeClient


class ServerHandle:
    """One running in-process server plus its loop/thread plumbing."""

    def __init__(self, server: ReachServer, loop, thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread
        self._stopped = False

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, timeout=timeout)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        )
        future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)


@pytest.fixture
def serve_factory(tmp_path):
    """Start ReachServer instances; everything is torn down at exit.

    Usage: ``handle = serve_factory(pool_size=1, ...)``; keyword
    arguments are forwarded to :class:`ReachServer`, with the cache and
    trace dirs defaulting to per-test tmp locations.
    """
    handles = []
    had_pid = os.environ.get(SERVE_PID_ENV_VAR)

    def start(**kwargs) -> ServerHandle:
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("trace_dir", str(tmp_path / "trace"))
        kwargs.setdefault("port", 0)
        kwargs.setdefault("pool_size", 2)
        server = ReachServer(**kwargs)
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            ready.set()
            loop.run_forever()

        thread = threading.Thread(
            target=run, name="serve-test-loop", daemon=True
        )
        thread.start()
        assert ready.wait(timeout=15), "server failed to start"
        handle = ServerHandle(server, loop, thread)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()
    # The server exports its pid for server_crash faults; do not leak
    # the test process's pid into later (subprocess-spawning) tests.
    if had_pid is None:
        os.environ.pop(SERVE_PID_ENV_VAR, None)
    else:
        os.environ[SERVE_PID_ENV_VAR] = had_pid

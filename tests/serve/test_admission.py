"""Admission-control and session-manager unit tests."""

from repro.serve import AdmissionController, AdmissionPolicy, SessionManager


class TestAdmission:
    def test_admits_up_to_pool_plus_queue(self):
        controller = AdmissionController(AdmissionPolicy(max_queue=2))
        tickets = [controller.try_admit(pool_size=2) for _ in range(4)]
        assert all(ticket is not None for ticket in tickets)
        assert controller.try_admit(pool_size=2) is None
        snapshot = controller.snapshot()
        assert snapshot["inflight"] == 4
        assert snapshot["admitted"] == 4
        assert snapshot["shed"] == 1
        assert snapshot["peak_inflight"] == 4

    def test_release_reopens_the_gate(self):
        controller = AdmissionController(AdmissionPolicy(max_queue=0))
        assert controller.try_admit(pool_size=1) is not None
        assert controller.try_admit(pool_size=1) is None
        controller.release()
        assert controller.try_admit(pool_size=1) is not None

    def test_budget_defaults_and_ceiling(self):
        policy = AdmissionPolicy(
            default_budget_seconds=10.0,
            max_budget_seconds=20.0,
            watchdog_factor=2.0,
            watchdog_grace_seconds=1.0,
        )
        controller = AdmissionController(policy)
        defaulted = controller.try_admit(pool_size=1)
        assert defaulted.max_seconds == 10.0
        assert defaulted.budget_seconds == 10.0 * 2.0 + 1.0
        clamped = controller.try_admit(pool_size=1, requested_seconds=999.0)
        assert clamped.max_seconds == 20.0
        honored = controller.try_admit(pool_size=1, requested_seconds=3.0)
        assert honored.max_seconds == 3.0

    def test_rss_ceiling_converts_to_bytes(self):
        controller = AdmissionController(AdmissionPolicy(max_rss_mb=2.0))
        ticket = controller.try_admit(pool_size=1)
        assert ticket.max_rss_bytes == 2 * 1024 * 1024
        controller = AdmissionController(AdmissionPolicy())
        assert controller.try_admit(pool_size=1).max_rss_bytes is None

    def test_retry_after_scales_with_backlog(self):
        controller = AdmissionController(
            AdmissionPolicy(min_retry_after_seconds=1.0)
        )
        idle = controller.retry_after({"queued": 0, "size": 2}, 4.0)
        busy = controller.retry_after({"queued": 6, "size": 2}, 4.0)
        assert idle >= 1.0
        assert busy > idle
        # Floor applies when the estimate is tiny.
        floored = controller.retry_after({"queued": 0, "size": 8}, 0.01)
        assert floored == 1.0


class TestSessions:
    def test_first_waiter_creates_later_waiters_attach(self):
        sessions = SessionManager()
        seen = []
        w1, created1 = sessions.begin_or_attach("k", lambda s, f: seen.append(("a", s)))
        w2, created2 = sessions.begin_or_attach("k", lambda s, f: seen.append(("b", s)))
        assert created1 is True and created2 is False
        assert w1.session is w2.session
        assert sessions.snapshot()["dedup_hits"] == 1
        delivered = sessions.finish(w1.session, "ok", {"key": "k"})
        assert delivered == 2
        assert sorted(seen) == [("a", "ok"), ("b", "ok")]
        assert sessions.session_for("k") is None

    def test_detach_last_waiter_cancels_the_attempt(self):
        sessions = SessionManager()
        w1, _ = sessions.begin_or_attach("k", lambda s, f: None)
        w2, _ = sessions.begin_or_attach("k", lambda s, f: None)
        sessions.detach(w1)
        assert not w1.session.token.is_set()
        sessions.detach(w2)
        assert w1.session.token.is_set()
        assert w1.session.token.reason == "cancelled"
        assert sessions.snapshot()["abandoned"] == 1

    def test_detach_is_idempotent(self):
        sessions = SessionManager()
        w1, _ = sessions.begin_or_attach("k", lambda s, f: None)
        sessions.detach(w1)
        sessions.detach(w1)
        assert sessions.snapshot()["abandoned"] == 1

    def test_detached_waiter_gets_no_delivery(self):
        sessions = SessionManager()
        seen = []
        w1, _ = sessions.begin_or_attach("k", lambda s, f: seen.append("a"))
        w2, _ = sessions.begin_or_attach("k", lambda s, f: seen.append("b"))
        sessions.detach(w1)
        assert sessions.finish(w2.session, "ok", {}) == 1
        assert seen == ["b"]

    def test_finish_unregisters_before_delivery(self):
        # A client that re-asks from inside its delivery callback must
        # start a fresh session, not attach to the finished one.
        sessions = SessionManager()
        rounds = []

        def reask(status, fields):
            _, created = sessions.begin_or_attach("k", lambda s, f: None)
            rounds.append(created)

        waiter, _ = sessions.begin_or_attach("k", reask)
        sessions.finish(waiter.session, "ok", {})
        assert rounds == [True]

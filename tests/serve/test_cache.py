"""Result-cache unit tests: atomicity, checksums, quarantine, stats."""

import json
import os

import pytest

from repro.reach import ReachResult
from repro.serve import COMPLETE, RESUMABLE, ResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def result_for(circuit="traffic", completed=True, **kwargs):
    return ReachResult(
        engine="bfv",
        circuit=circuit,
        order="S1",
        completed=completed,
        iterations=kwargs.pop("iterations", 3),
        num_states=kwargs.pop("num_states", 16),
        **kwargs,
    )


class TestRoundtrip:
    def test_store_then_lookup(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.store(KEY, result_for(), COMPLETE)
        assert os.path.exists(path)
        entry = cache.lookup(KEY)
        assert entry is not None
        assert entry.status == COMPLETE
        assert entry.key == KEY
        assert entry.result.num_states == 16
        assert entry.result.completed is True

    def test_lookup_miss_returns_none(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.lookup(KEY) is None

    def test_store_overwrites_resumable_with_complete(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store(KEY, result_for(completed=False, failure="time"), RESUMABLE)
        assert cache.lookup(KEY).status == RESUMABLE
        cache.store(KEY, result_for(), COMPLETE)
        assert cache.lookup(KEY).status == COMPLETE

    def test_store_rejects_unknown_status(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.store(KEY, result_for(), "half-done")

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.store(KEY, result_for(), COMPLETE)
        assert path == os.path.join(str(tmp_path), KEY[:2], KEY, "entry.json")

    def test_no_tmp_file_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store(KEY, result_for(), COMPLETE)
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestQuarantine:
    def corrupt(self, cache, mutate):
        path = cache.store(KEY, result_for(), COMPLETE)
        with open(path) as handle:
            data = json.load(handle)
        mutate(data)
        with open(path, "w") as handle:
            if data is None:
                handle.write("{ not json")
            else:
                json.dump(data, handle)
        return path

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda data: data.__setitem__("result", dict(data["result"], num_states=999)),
            lambda data: data.__setitem__("checksum", "0" * 64),
            lambda data: data.__setitem__("schema", "repro-serve-cache 99"),
            lambda data: data.__setitem__("key", OTHER),
            lambda data: data.__setitem__("status", "half-done"),
        ],
    )
    def test_bad_entries_are_quarantined(self, tmp_path, mutate, recwarn):
        cache = ResultCache(str(tmp_path))
        path = self.corrupt(cache, mutate)
        # A checksum-variant mutation needs the checksum to stay stale:
        # every parametrization either breaks the checksum directly or
        # changes checksummed content without recomputing it.
        assert cache.lookup(KEY) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert cache.quarantined == [path + ".corrupt"]
        assert any(
            "quarantined corrupt cache entry" in str(w.message)
            for w in recwarn.list
        )

    def test_unparsable_json_is_quarantined(self, tmp_path, recwarn):
        cache = ResultCache(str(tmp_path))
        path = cache.store(KEY, result_for(), COMPLETE)
        with open(path, "w") as handle:
            handle.write("{ torn")
        assert cache.lookup(KEY) is None
        assert os.path.exists(path + ".corrupt")

    def test_quarantine_degrades_to_recomputation(self, tmp_path, recwarn):
        # After quarantine the key is a plain miss; a fresh store works.
        cache = ResultCache(str(tmp_path))
        path = self.corrupt(
            cache, lambda data: data.__setitem__("checksum", "0" * 64)
        )
        assert cache.lookup(KEY) is None
        cache.store(KEY, result_for(), COMPLETE)
        entry = cache.lookup(KEY)
        assert entry is not None and entry.status == COMPLETE
        assert os.path.exists(path + ".corrupt")  # evidence is kept


class TestCheckpointsAndStats:
    def test_checkpoint_dir_is_created_and_detected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        ckpt = cache.checkpoint_dir(KEY)
        assert os.path.isdir(ckpt)
        assert cache.has_checkpoints(KEY) is False
        with open(os.path.join(ckpt, "ckpt-bfv-S1-traffic-00000001.rbdd"), "w") as f:
            f.write("stub\n")
        assert cache.has_checkpoints(KEY) is True

    def test_has_checkpoints_false_without_dir(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.has_checkpoints(KEY) is False

    def test_stats_counts_statuses(self, tmp_path, recwarn):
        cache = ResultCache(str(tmp_path))
        cache.store(KEY, result_for(), COMPLETE)
        cache.store(OTHER, result_for(completed=False, failure="time"), RESUMABLE)
        assert cache.stats() == {"complete": 1, "resumable": 1, "corrupt": 0}
        with open(cache.entry_path(KEY), "w") as handle:
            handle.write("{ torn")
        assert cache.lookup(KEY) is None  # quarantines
        assert cache.stats() == {"complete": 0, "resumable": 1, "corrupt": 1}

"""Protocol-layer unit tests: parsing, validation, fingerprints."""

import json

import pytest

from repro.circuits import bench, generators as gen
from repro.errors import ServeError
from repro.serve import parse_request
from repro.serve.protocol import ReachRequest, encode, error_response, response


class TestParseRequest:
    def test_reach_minimal(self):
        request = parse_request('{"op": "reach", "id": "r1", "circuit": "traffic"}')
        assert request.op == "reach"
        assert request.id == "r1"
        assert request.reach.circuit == "traffic"
        assert request.reach.engine == "bfv"
        assert request.reach.order == "S1"
        assert request.reach.mode == "run"
        assert request.reach.count_states is True

    def test_reach_full_options(self):
        request = parse_request(
            json.dumps(
                {
                    "op": "reach",
                    "id": "r2",
                    "circuit": "s27",
                    "engine": "conj",
                    "order": "S2",
                    "max_seconds": 2.5,
                    "max_nodes": 1000,
                    "max_iterations": 7,
                    "count_states": False,
                    "mode": "peek",
                    "faults": [{"kind": "hang", "at_iteration": 1, "seconds": 1}],
                }
            )
        )
        reach = request.reach
        assert reach.engine == "conj"
        assert reach.order == "S2"
        assert reach.max_seconds == 2.5
        assert reach.max_nodes == 1000
        assert reach.max_iterations == 7
        assert reach.count_states is False
        assert reach.mode == "peek"
        assert reach.faults == [{"kind": "hang", "at_iteration": 1, "seconds": 1}]

    def test_bytes_input_accepted(self):
        request = parse_request(b'{"op": "status", "id": "s1"}')
        assert request.op == "status"

    def test_cancel_needs_target(self):
        request = parse_request('{"op": "cancel", "id": "c1", "target": "r1"}')
        assert request.target == "r1"
        with pytest.raises(ServeError):
            parse_request('{"op": "cancel", "id": "c1"}')

    def test_batch_parses_items_with_default_ids(self):
        request = parse_request(
            json.dumps(
                {
                    "op": "batch",
                    "id": "b1",
                    "requests": [
                        {"circuit": "traffic"},
                        {"circuit": "s27", "id": "mine"},
                    ],
                }
            )
        )
        assert [item.id for item in request.requests] == ["b1.0", "mine"]

    @pytest.mark.parametrize(
        "raw",
        [
            "not json at all",
            '"just a string"',
            '{"op": "explode", "id": "x"}',
            '{"op": "reach", "circuit": "traffic"}',  # no id
            '{"op": "reach", "id": "", "circuit": "traffic"}',
            '{"op": "reach", "id": "r", "circuit": ""}',
            '{"op": "reach", "id": "r", "circuit": "t", "engine": "qbf"}',
            '{"op": "reach", "id": "r", "circuit": "t", "order": "S99"}',
            '{"op": "reach", "id": "r", "circuit": "t", "mode": "loiter"}',
            '{"op": "reach", "id": "r", "circuit": "t", "max_seconds": -1}',
            '{"op": "reach", "id": "r", "circuit": "t", "max_seconds": true}',
            '{"op": "reach", "id": "r", "circuit": "t", "max_iterations": 1.5}',
            '{"op": "reach", "id": "r", "circuit": "t", "count_states": "yes"}',
            '{"op": "reach", "id": "r", "circuit": "t", "faults": {"kind": "die"}}',
            '{"op": "reach", "id": "r", "circuit": "t", "faults": ["die"]}',
            '{"op": "batch", "id": "b", "requests": []}',
            '{"op": "batch", "id": "b", "requests": ["nope"]}',
        ],
    )
    def test_malformed_requests_raise(self, raw):
        with pytest.raises(ServeError):
            parse_request(raw)

    def test_batch_rejects_duplicate_item_ids(self):
        with pytest.raises(ServeError):
            parse_request(
                json.dumps(
                    {
                        "op": "batch",
                        "id": "b1",
                        "requests": [
                            {"circuit": "traffic", "id": "same"},
                            {"circuit": "s27", "id": "same"},
                        ],
                    }
                )
            )


class TestFingerprint:
    def test_stable_across_instances(self):
        a = ReachRequest(id="r1", circuit="traffic")
        b = ReachRequest(id="totally-different-id", circuit="traffic")
        assert a.fingerprint() == b.fingerprint()

    def test_budgets_do_not_change_the_key(self):
        # A retried request with a bigger budget must hit the resumable
        # entry its timed-out predecessor left behind.
        a = ReachRequest(id="r1", circuit="traffic", max_seconds=1.0)
        b = ReachRequest(id="r2", circuit="traffic", max_seconds=600.0, max_nodes=10**6)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "conj"},
            {"order": "S2"},
            {"count_states": False},
            {"max_iterations": 3},
            {"faults": [{"kind": "timeout", "at_iteration": 1}]},
        ],
    )
    def test_semantic_options_change_the_key(self, kwargs):
        base = ReachRequest(id="r", circuit="traffic")
        other = ReachRequest(id="r", circuit="traffic", **kwargs)
        assert base.fingerprint() != other.fingerprint()

    def test_key_is_content_addressed_not_path_addressed(self, tmp_path):
        # The same netlist under two different file names shares one key;
        # editing the netlist changes it.
        circuit = gen.counter(3)
        path_a = tmp_path / "a.bench"
        path_b = tmp_path / "b.bench"
        text = bench.dumps(circuit)
        path_a.write_text(text)
        path_b.write_text(text)
        key_a = ReachRequest(id="r", circuit=str(path_a)).fingerprint()
        key_b = ReachRequest(id="r", circuit=str(path_b)).fingerprint()
        assert key_a == key_b
        other = bench.dumps(gen.counter(4))
        path_b.write_text(other)
        assert ReachRequest(id="r", circuit=str(path_b)).fingerprint() != key_a


class TestResponses:
    def test_response_drops_none_fields(self):
        message = response("r1", "ok", key="k", retry_after=None)
        assert message == {"id": "r1", "status": "ok", "key": "k"}

    def test_error_response_tolerates_missing_id(self):
        message = error_response(None, "boom")
        assert message["status"] == "error"
        assert message["error"] == "boom"

    def test_encode_is_one_json_line(self):
        line = encode({"id": "x", "status": "ok"})
        assert line.endswith(b"\n")
        assert json.loads(line.decode()) == {"id": "x", "status": "ok"}

"""End-to-end service tests over real sockets and supervised children.

Every test here drives a live :class:`repro.serve.ReachServer` through
the blocking client — the full serve → admission → session → pool →
supervisor → engine path, including the degradation ladder: cache hit,
in-flight dedup, cooperative cancel, load shed, crash-retry, and
timeout → resumable → resume.
"""

import time

import pytest

from repro.circuits.catalog import resolve
from repro.obs.report import render_trace_path
from repro.serve import AdmissionPolicy
from repro.sim import explicit_reachable

#: A fault plan that wedges the attempt long enough for a second
#: pipelined request to arrive, without tripping any watchdog.
SLOW = [{"kind": "hang", "at_iteration": 1, "seconds": 1.0}]

#: A fault plan that wedges the attempt until cancelled.
STUCK = [{"kind": "hang", "at_iteration": 1, "seconds": 60.0}]


def poll_status(client, predicate, timeout=20.0):
    """Poll ``status`` until ``predicate(reply)`` holds; returns the reply."""
    deadline = time.monotonic() + timeout
    while True:
        reply = client.status()
        if predicate(reply):
            return reply
        if time.monotonic() > deadline:
            raise AssertionError("status never satisfied: %r" % (reply,))
        time.sleep(0.05)


class TestReach:
    def test_completes_and_matches_oracle(self, serve_factory):
        handle = serve_factory()
        truth = explicit_reachable(resolve("traffic"))
        with handle.client() as client:
            reply = client.reach("traffic", max_seconds=60)
        assert reply["status"] == "ok", reply
        result = reply["result"]
        assert result["completed"] is True
        assert result["num_states"] == len(truth)
        assert "cached" not in reply

    def test_identical_request_is_a_cache_hit(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            first = client.reach("traffic", max_seconds=60)
            second = client.reach("traffic", max_seconds=60)
            status = client.status()
        assert first["status"] == "ok"
        assert second["status"] == "ok"
        assert second.get("cached") is True
        assert second["result"]["num_states"] == first["result"]["num_states"]
        assert status["counters"]["cache_hits"] == 1
        assert status["cache"]["complete"] == 1

    def test_budget_variant_hits_the_same_entry(self, serve_factory):
        # max_seconds is excluded from the fingerprint, so a retried
        # request with a different budget is still a cache hit.
        handle = serve_factory()
        with handle.client() as client:
            client.reach("traffic", max_seconds=60)
            again = client.reach("traffic", max_seconds=7)
        assert again.get("cached") is True

    def test_peek_never_starts_work(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            miss = client.reach("traffic", mode="peek")
            client.reach("traffic", max_seconds=60)
            hit = client.reach("traffic", mode="peek")
            status = client.status()
        assert miss["status"] == "miss"
        assert hit["status"] == "ok"
        assert hit.get("cached") is True
        # Only the run-mode request started a session.
        assert status["sessions"]["started"] == 1

    def test_malformed_lines_do_not_kill_the_connection(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            garbage = client.recv()
            assert garbage["status"] == "error"
            bad_op = client.call({"op": "launch_missiles"})
            assert bad_op["status"] == "error"
            reply = client.reach("traffic", max_seconds=60)
            assert reply["status"] == "ok"


class TestDedup:
    def test_concurrent_identical_requests_share_one_attempt(
        self, serve_factory
    ):
        handle = serve_factory()
        with handle.client() as client:
            # Pipeline two identical requests; the hang fault keeps the
            # first attempt in flight while the second arrives.
            first = client.send({"op": "reach", "circuit": "traffic",
                                 "max_seconds": 60, "faults": SLOW})
            second = client.send({"op": "reach", "circuit": "traffic",
                                  "max_seconds": 60, "faults": SLOW})
            reply_one = client.wait(first)
            reply_two = client.wait(second)
            status = client.status()
        assert reply_one["status"] == "ok"
        assert reply_two["status"] == "ok"
        assert reply_one["result"] == reply_two["result"]
        assert status["sessions"]["started"] == 1
        assert status["sessions"]["dedup_hits"] == 1
        # One attempt ran; the dedup waiter never touched the pool.
        assert status["pool"]["submitted"] == 1


class TestCancel:
    def test_cancel_kills_the_attempt_and_keeps_a_resumable_entry(
        self, serve_factory
    ):
        handle = serve_factory()
        with handle.client() as client:
            request_id = client.send({"op": "reach", "circuit": "traffic",
                                      "max_seconds": 120, "faults": STUCK})
            time.sleep(0.3)  # let the attempt reach its first checkpoint
            ack = client.cancel(request_id)
            assert ack["status"] == "ok"
            cancelled = client.wait(request_id)
            assert cancelled["status"] == "cancelled"
            # The killed child left its checkpoint; the entry is stored
            # resumable once the supervisor reaps it.
            status = poll_status(
                client,
                lambda r: r["counters"]["resumable_stored"] >= 1,
            )
        assert status["counters"]["cancelled"] >= 1
        assert status["sessions"]["abandoned"] == 1
        assert status["cache"]["resumable"] == 1

    def test_cancel_unknown_target_is_an_error(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            reply = client.cancel("never-sent")
        assert reply["status"] == "error"

    def test_disconnect_abandons_the_attempt(self, serve_factory):
        handle = serve_factory()
        client = handle.client()
        client.send({"op": "reach", "circuit": "traffic",
                     "max_seconds": 120, "faults": STUCK})
        time.sleep(0.3)
        client.close()  # vanish without cancelling
        with handle.client() as watcher:
            status = poll_status(
                watcher,
                lambda r: r["counters"]["resumable_stored"] >= 1,
            )
        assert status["counters"]["disconnects"] == 1
        assert status["sessions"]["abandoned"] == 1


class TestShed:
    def test_overload_sheds_with_retry_after(self, serve_factory):
        handle = serve_factory(
            pool_size=1, policy=AdmissionPolicy(max_queue=0)
        )
        with handle.client() as client:
            busy = client.send({"op": "reach", "circuit": "traffic",
                                "max_seconds": 60, "faults": SLOW})
            shed = client.send({"op": "reach", "circuit": "s27",
                                "max_seconds": 60})
            shed_reply = client.wait(shed)
            busy_reply = client.wait(busy)
            status = client.status()
        assert shed_reply["status"] == "shed"
        assert shed_reply["retry_after"] >= 1.0
        assert busy_reply["status"] == "ok"
        assert status["counters"]["shed"] == 1
        assert status["admission"]["shed"] == 1
        # A shed leaves nothing behind: the key can be asked again.
        with handle.client() as client:
            retry = client.reach("s27", max_seconds=60)
        assert retry["status"] == "ok"


class TestResume:
    def test_timeout_then_bigger_budget_resumes(self, serve_factory):
        handle = serve_factory(pool_size=1)
        with handle.client(timeout=120) as client:
            partial = client.reach("counter8", max_seconds=0.2)
            assert partial["status"] == "resumable", partial
            assert partial["result"]["completed"] is False
            assert partial["result"]["failure"] == "time"
            assert partial["retry_after"] >= 1.0
            first_iterations = partial["result"]["iterations"]
            assert first_iterations >= 1

            peek = client.reach("counter8", mode="peek")
            assert peek["status"] == "resumable"

            final = client.reach("counter8", max_seconds=120)
            status = client.status()
        assert final["status"] == "ok", final
        result = final["result"]
        assert result["completed"] is True
        assert result["num_states"] == 256
        resumed_from = result["extra"]["resumed_from"]
        assert resumed_from >= 1
        # The resumed attempt did strictly less than a cold run: its
        # fresh iterations plus the inherited prefix cover the fixpoint.
        assert result["iterations"] - resumed_from < result["iterations"]
        assert status["counters"]["resumes"] == 1
        assert status["counters"]["resumable_stored"] >= 1
        assert status["cache"]["complete"] == 1

    def test_crash_is_retried_and_leaves_resumable_state(self, serve_factory):
        # A child that dies at every iteration exhausts the retry policy;
        # each retry resumes one iteration further, and the final answer
        # is a resumable partial result, not a hard failure.
        handle = serve_factory(pool_size=1)
        faults = [{"kind": "die", "at_iteration": 1, "max_hits": 1}]
        with handle.client(timeout=120) as client:
            reply = client.reach("traffic", max_seconds=60, faults=faults)
            status = client.status()
        assert reply["status"] == "resumable", reply
        result = reply["result"]
        assert result["failure"] == "crash"
        assert result["extra"]["retries_exhausted"] == 3
        assert status["counters"]["resumable_stored"] == 1


class TestBatch:
    def test_batch_mixes_fresh_dedup_and_cached(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            warm = client.reach("s27", max_seconds=60)
            assert warm["status"] == "ok"
            reply = client.batch(
                [
                    {"circuit": "traffic", "max_seconds": 60, "faults": SLOW},
                    {"circuit": "traffic", "max_seconds": 60, "faults": SLOW},
                    {"circuit": "s27", "max_seconds": 60},
                ]
            )
            status = client.status()
        assert reply["status"] == "ok"
        assert reply["failed"] == 0
        results = {item["id"]: item for item in reply["results"]}
        assert len(results) == 3
        first, second, cached = (
            results[key] for key in sorted(results)
        )
        assert first["result"] == second["result"]
        assert cached.get("cached") is True
        assert status["sessions"]["dedup_hits"] == 1

    def test_batch_reports_partial_failures(self, serve_factory):
        handle = serve_factory(
            pool_size=1, policy=AdmissionPolicy(max_queue=0)
        )
        with handle.client() as client:
            reply = client.batch(
                [
                    {"circuit": "traffic", "max_seconds": 60, "faults": SLOW},
                    {"circuit": "s27", "max_seconds": 60},
                ]
            )
        assert reply["status"] == "partial"
        assert reply["failed"] == 1
        statuses = sorted(item["status"] for item in reply["results"])
        assert statuses == ["ok", "shed"]


class TestTelemetry:
    def test_trace_renders_serve_section(self, serve_factory, tmp_path):
        handle = serve_factory()
        with handle.client() as client:
            client.reach("traffic", max_seconds=60)
            client.reach("traffic", max_seconds=60)
            client.status()
        rendered = render_trace_path(handle.server.trace_dir)
        assert "== serve ==" in rendered
        assert "cache_hit" in rendered
        assert "cache_hits 1" in rendered
        assert "cache: 1 complete" in rendered

    def test_status_snapshot_shape(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            status = client.status()
        for section in ("counters", "sessions", "admission", "pool", "cache"):
            assert section in status, section
        assert status["pool"]["size"] == 2


@pytest.mark.slow
class TestLoad:
    def test_many_concurrent_clients(self, serve_factory):
        # A miniature load test: concurrent duplicate requests across
        # connections all answer consistently, via one attempt + cache.
        import threading

        handle = serve_factory(pool_size=2)
        replies = []
        lock = threading.Lock()

        def one(index):
            with handle.client(timeout=120) as client:
                reply = client.reach(
                    "traffic", max_seconds=60,
                    faults=[{"kind": "hang", "at_iteration": 1, "seconds": 2.0}],
                )
            with lock:
                replies.append(reply)

        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(replies) == 8
        assert all(r["status"] == "ok" for r in replies)
        states = {r["result"]["num_states"] for r in replies}
        assert len(states) == 1
        with handle.client() as client:
            status = client.status()
        assert status["pool"]["submitted"] <= 2
        assert (
            status["sessions"]["dedup_hits"]
            + status["counters"]["cache_hits"]
            >= 6
        )

"""Kill-resume soak: SIGKILL the serve process mid-run, resume from cache.

The acceptance test for the fault-tolerant service: a real
``python -m repro serve`` subprocess is killed -9 while an attempt is
mid-flight; its supervised child notices the orphaning and exits,
leaving its checkpoints in the content-addressed cache.  A *restarted*
server answers the same request by resuming from that checkpoint —
strictly fewer fresh iterations than a cold run, the same reached-set
count — and the resume is visible in the ``python -m repro trace``
counters.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.circuits import bench, generators as gen
from repro.harness.faults import SERVE_PID_ENV_VAR
from repro.serve import ServeClient

BANNER = re.compile(r"serving on ([\d.]+):(\d+) \(pid (\d+)\)")

#: Wide enough that a loaded CI box still beats every deadline.
STEP_TIMEOUT = 60.0


def spawn_server(cache_dir, trace_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(bench.__file__), "..", "..")
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath(src)]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env.pop(SERVE_PID_ENV_VAR, None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--cache-dir", str(cache_dir),
            "--trace-dir", str(trace_dir),
            "--pool", "1",
            "--checkpoint-interval", "4",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    match = BANNER.search(line)
    assert match, "no serve banner, got %r" % line
    return proc, match.group(1), int(match.group(2)), int(match.group(3))


def children_of_server(server_pid):
    """Live pids whose environment names ``server_pid`` as their server."""
    needle = ("%s=%d" % (SERVE_PID_ENV_VAR, server_pid)).encode() + b"\0"
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == server_pid:
            continue
        try:
            with open("/proc/%s/environ" % entry, "rb") as handle:
                environ = handle.read()
        except OSError:
            continue
        if needle in environ:
            found.append(int(entry))
    return found


def wait_for(predicate, timeout=STEP_TIMEOUT, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("timed out waiting for %s" % message)


def checkpoints_under(cache_dir):
    return [
        os.path.join(dirpath, name)
        for dirpath, _, names in os.walk(str(cache_dir))
        for name in names
        if name.endswith(".rbdd")
    ]


@pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="needs /proc for orphan accounting"
)
def test_kill_resume_soak(tmp_path):
    cache_dir = tmp_path / "cache"
    trace_dir = tmp_path / "trace"
    circuit_path = tmp_path / "soak.bench"
    # counter(9): 512 iterations — seconds of supervised work, so the
    # kill lands mid-run with plenty of checkpoints on disk.
    bench.dump(gen.counter(9), str(circuit_path))

    proc, host, port, server_pid = spawn_server(cache_dir, trace_dir)
    try:
        client = ServeClient(host, port, timeout=STEP_TIMEOUT)
        assert client.server_pid == server_pid
        client.send(
            {"op": "reach", "circuit": str(circuit_path), "max_seconds": 300}
        )
        # Let the attempt run until its first checkpoint hits the cache,
        # then SIGKILL the whole server out from under it.
        wait_for(
            lambda: checkpoints_under(cache_dir),
            message="first checkpoint",
        )
        os.kill(server_pid, signal.SIGKILL)
        proc.wait(timeout=STEP_TIMEOUT)
        client.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The supervised child notices the orphaning and exits on its own —
    # no engine process may outlive the dead server.
    wait_for(
        lambda: not children_of_server(server_pid),
        message="orphaned children to exit",
    )
    survivors = checkpoints_under(cache_dir)
    assert survivors, "the killed run left no checkpoint to resume from"

    # Restart against the same cache; the identical request resumes.
    proc2, host2, port2, pid2 = spawn_server(cache_dir, trace_dir)
    try:
        with ServeClient(host2, port2, timeout=STEP_TIMEOUT) as client:
            reply = client.reach(str(circuit_path), max_seconds=300)
            status = client.status()
        assert reply["status"] == "ok", reply
        result = reply["result"]
        assert result["completed"] is True
        assert result["num_states"] == 2 ** 9
        resumed_from = result["extra"]["resumed_from"]
        assert resumed_from >= 1
        fresh_iterations = result["iterations"] - resumed_from
        assert fresh_iterations < result["iterations"], (
            "resume did not save work: %d fresh of %d total"
            % (fresh_iterations, result["iterations"])
        )
        assert status["counters"]["resumes"] == 1
        assert status["cache"]["complete"] == 1

        # Graceful shutdown drains the pool and exits 0.
        proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=STEP_TIMEOUT) == 0
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait()
    wait_for(
        lambda: not children_of_server(pid2),
        message="second server's children to exit",
    )

    # The resume is visible in the operator-facing trace report.
    rendered = subprocess.run(
        [sys.executable, "-m", "repro", "trace", str(trace_dir)],
        capture_output=True,
        text=True,
        env=dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                [
                    os.path.abspath(
                        os.path.join(
                            os.path.dirname(bench.__file__), "..", ".."
                        )
                    )
                ]
                + [
                    p
                    for p in os.environ.get("PYTHONPATH", "").split(
                        os.pathsep
                    )
                    if p
                ]
            ),
        ),
        timeout=STEP_TIMEOUT,
    )
    assert rendered.returncode == 0, rendered.stderr
    assert "== serve ==" in rendered.stdout
    assert "resumes 1" in rendered.stdout
    assert "resumed" in rendered.stdout  # the request disposition row

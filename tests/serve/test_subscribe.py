"""Streaming telemetry over the wire: subscribe / trace / metrics ops.

Subscriber lifecycle against a live server: stream an in-flight run to
completion, attach to a deduped fingerprint, overflow a deliberately
tiny subscriber queue, and disconnect mid-stream without disturbing
the run.  Plus the two non-streaming observability ops (``trace`` on a
cached fingerprint, ``metrics``) and the Prometheus HTTP endpoint.
"""

import time
import urllib.error
import urllib.request

from repro.serve.client import ServeClient

#: Wedges the attempt long enough for a subscriber to attach and see
#: live iteration events, without tripping any watchdog.
SLOW = [{"kind": "hang", "at_iteration": 1, "seconds": 1.5}]


def drain(stream):
    """Consume a subscribe generator; returns (messages, closing)."""
    messages = list(stream)
    return messages, messages[-1]


def events_of(messages):
    return [m for m in messages if m.get("status") == "event"]


class TestSubscribe:
    def test_stream_live_run_to_completion(self, serve_factory):
        handle = serve_factory(pool_size=1)
        with handle.client() as runner, handle.client() as watcher:
            runner.send(
                {"op": "reach", "circuit": "traffic",
                 "max_seconds": 60, "faults": SLOW}
            )
            # Wait for the session to exist so the subscribe is live.
            deadline = time.monotonic() + 10
            while True:
                status = watcher.status()
                if status["sessions"]["inflight_sessions"] >= 1:
                    break
                assert time.monotonic() < deadline, status
                time.sleep(0.05)
            messages, closing = drain(
                watcher.subscribe(
                    "traffic", max_seconds=60, faults=SLOW
                )
            )
        assert messages[0]["status"] == "streaming"
        assert messages[0]["live"] is True
        iteration_events = [
            m
            for m in events_of(messages)
            if m["record"].get("event") == "iteration"
        ]
        assert iteration_events, messages[:5]
        record = iteration_events[0]["record"]
        assert record["circuit"] == "traffic"
        assert isinstance(record.get("iteration"), int)
        assert closing["status"] == "complete"
        assert closing["outcome"] == "ok"
        assert closing["events"] == len(events_of(messages))

    def test_subscribe_to_deduped_inflight_fingerprint(self, serve_factory):
        handle = serve_factory(pool_size=1)
        with handle.client() as first, handle.client() as second, \
                handle.client() as watcher:
            request = {"op": "reach", "circuit": "traffic",
                       "max_seconds": 60, "faults": SLOW}
            first_id = first.send(dict(request))
            deadline = time.monotonic() + 10
            while True:
                status = watcher.status()
                if status["sessions"]["inflight_sessions"] >= 1:
                    break
                assert time.monotonic() < deadline, status
                time.sleep(0.05)
            second_id = second.send(dict(request))  # dedup attach
            messages, closing = drain(
                watcher.subscribe(
                    "traffic", max_seconds=60, faults=SLOW
                )
            )
            first_reply = first.wait(first_id)
            second_reply = second.wait(second_id)
            status = watcher.status()
        assert closing["status"] == "complete"
        assert events_of(messages)
        assert first_reply["status"] == "ok"
        assert second_reply["status"] == "ok"
        # One attempt served two waiters and the subscriber: the
        # subscriber attached without becoming a third session.
        assert status["sessions"]["started"] == 1
        assert status["sessions"]["dedup_hits"] == 1
        assert status["counters"]["subscriptions"] == 1

    def test_slow_consumer_overflow_drops_are_counted(self, serve_factory):
        # queue size 1: replaying a stored multi-record trace arrives
        # as one poll batch, so all but one record must be dropped and
        # counted -- never silently lost, never blocking the tailer.
        handle = serve_factory(pool_size=1, subscriber_queue_size=1)
        with handle.client() as client:
            reply = client.reach("traffic", max_seconds=60)
            assert reply["status"] == "ok"
            messages, closing = drain(
                client.subscribe("traffic", max_seconds=60)
            )
            status = client.status()
        assert messages[0]["status"] == "streaming"
        assert messages[0]["live"] is False  # replay of a stored trace
        assert closing["status"] == "complete"
        assert closing["dropped"] > 0
        assert closing["events"] >= 1
        assert status["counters"]["subscriber_drops"] == closing["dropped"]
        assert status["counters"]["stream_events"] == closing["events"]

    def test_disconnect_mid_stream_leaves_run_unaffected(self, serve_factory):
        handle = serve_factory(pool_size=1)
        with handle.client() as runner:
            runner.send(
                {"op": "reach", "circuit": "traffic",
                 "max_seconds": 60, "faults": SLOW}
            )
            deadline = time.monotonic() + 10
            while True:
                status = runner.status()
                if status["sessions"]["inflight_sessions"] >= 1:
                    break
                assert time.monotonic() < deadline, status
                time.sleep(0.05)
            watcher = handle.client()
            stream = watcher.subscribe(
                "traffic", max_seconds=60, faults=SLOW
            )
            assert next(stream)["status"] == "streaming"
            watcher.close()  # vanish mid-stream
            reply = runner.wait("c1")
            status = runner.status()
        # The run finished normally: a subscriber is not a waiter, so
        # its disconnect neither cancels nor keeps the session alive.
        assert reply["status"] == "ok"
        assert reply["result"]["completed"] is True
        assert status["sessions"]["abandoned"] == 0

    def test_subscribe_unknown_fingerprint_is_a_miss(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            messages, closing = drain(
                client.subscribe(key="f" * 64)
            )
        assert len(messages) == 1
        assert closing["status"] == "miss"
        assert closing["key"] == "f" * 64


class TestTraceOp:
    def test_cached_fingerprint_answers_without_recomputation(
        self, serve_factory
    ):
        handle = serve_factory(pool_size=1)
        with handle.client() as client:
            reply = client.reach("traffic", max_seconds=60)
            assert reply["status"] == "ok"
            trace = client.trace("traffic", max_seconds=60)
            status = client.status()
        assert trace["status"] == "ok"
        assert trace["cached"] == "complete"
        assert trace["live"] is False
        # No second attempt was started to answer the trace op.
        assert status["sessions"]["started"] == 1
        runs = trace["trace"]["runs"]
        assert len(runs) == 1
        run = runs[0]
        assert run["engine"] == "bfv"
        assert run["circuit"] == "traffic"
        assert run["iterations"], "expected per-iteration records"
        assert "image" in run["phase_percentiles"]
        summary = run["summary"]
        assert summary["completed"] is True

    def test_unknown_fingerprint_is_a_miss(self, serve_factory):
        handle = serve_factory()
        with handle.client() as client:
            reply = client.trace(key="a" * 64)
        assert reply["status"] == "miss"
        assert reply.get("cached") is None


class TestMetrics:
    def test_metrics_op_snapshot(self, serve_factory):
        handle = serve_factory(pool_size=1)
        with handle.client() as client:
            client.reach("traffic", max_seconds=60)
            client.reach("traffic", max_seconds=60)  # cache hit
            reply = client.metrics()
        assert reply["status"] == "ok"
        metrics = reply["metrics"]
        counters = metrics["counters"]
        gauges = metrics["gauges"]
        histograms = metrics["histograms"]
        assert counters["serve_requests"] == 2
        assert counters["serve_cache_hits"] == 1
        assert counters['cache_stores{status="complete"}'] == 1
        assert gauges["serve_queue_depth"] == 0
        assert gauges['cache_entries{status="complete"}'] == 1
        # At least one latency histogram with real observations.
        assert any(
            snap["count"] >= 1 for snap in histograms.values()
        ), histograms.keys()
        assert (
            histograms[
                'serve_request_seconds{disposition="cache_hit"}'
            ]["count"]
            == 1
        )

    def test_http_exposition_endpoint(self, serve_factory):
        handle = serve_factory(pool_size=1, metrics_port=0)
        port = handle.server.metrics_port
        assert port not in (None, 0)
        with handle.client() as client:
            client.reach("traffic", max_seconds=60)
        body = urllib.request.urlopen(
            "http://127.0.0.1:%d/metrics" % port, timeout=10
        ).read().decode()
        lines = [
            line
            for line in body.splitlines()
            if line and not line.startswith("#")
        ]
        values = {}
        for line in lines:
            name, _, value = line.rpartition(" ")
            values[name] = float(value)
        assert values["repro_serve_requests_total"] == 1
        assert values["repro_serve_queue_depth"] == 0
        assert any("_bucket{" in name for name in values)
        # The request-latency histogram is present with its +Inf
        # bucket equal to its count (attempts fork, so engine-side
        # histograms live in the child, not this registry).
        series = 'disposition="cold"'
        assert (
            values[
                'repro_serve_request_seconds_bucket{%s,le="+Inf"}' % series
            ]
            == values["repro_serve_request_seconds_count{%s}" % series]
            == 1
        )

    def test_http_endpoint_404s_other_paths(self, serve_factory):
        handle = serve_factory(metrics_port=0)
        port = handle.server.metrics_port
        try:
            urllib.request.urlopen(
                "http://127.0.0.1:%d/other" % port, timeout=10
            )
        except urllib.error.HTTPError as error:
            assert error.code == 404
        else:
            raise AssertionError("expected a 404")

"""Concrete simulator and explicit-reachability oracle tests."""

import pytest

from repro.circuits import generators as gen
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError
from repro.sim import ConcreteSimulator, explicit_reachable


@pytest.fixture
def toggler():
    circuit = Circuit("toggler")
    circuit.add_input("en")
    circuit.add_latch("q", "d", init=False)
    circuit.xor("d", "q", "en")
    circuit.add_output("q")
    circuit.validate()
    return circuit


class TestStep:
    def test_toggle_semantics(self, toggler):
        sim = ConcreteSimulator(toggler)
        assert sim.step((False,), {"en": True}) == (True,)
        assert sim.step((True,), {"en": True}) == (False,)
        assert sim.step((True,), {"en": False}) == (True,)

    def test_missing_input_rejected(self, toggler):
        sim = ConcreteSimulator(toggler)
        with pytest.raises(CircuitError):
            sim.step((False,), {})

    def test_outputs(self, toggler):
        sim = ConcreteSimulator(toggler)
        assert sim.outputs((True,), {"en": False}) == {"q": True}

    def test_evaluate_nets_includes_gates(self, toggler):
        sim = ConcreteSimulator(toggler)
        values = sim.evaluate_nets((True,), {"en": True})
        assert values["d"] is False
        assert values["q"] is True

    def test_counter_counts(self):
        circuit = gen.counter(3)
        sim = ConcreteSimulator(circuit)
        state = circuit.initial_state
        for expected in range(1, 9):
            state = sim.step(state, {"en": True})
            value = sum(bit << i for i, bit in enumerate(state))
            assert value == expected % 8


class TestRun:
    def test_trace_length(self, toggler):
        sim = ConcreteSimulator(toggler)
        trace = [{"en": True}, {"en": False}, {"en": True}]
        states = sim.run(trace)
        assert states == [(False,), (True,), (True,), (False,)]

    def test_run_from_custom_state(self, toggler):
        sim = ConcreteSimulator(toggler)
        states = sim.run([{"en": False}], state=(True,))
        assert states == [(True,), (True,)]


class TestExplicitReachable:
    def test_counts_match_closed_form(self):
        assert len(explicit_reachable(gen.johnson(4))) == 8
        assert len(explicit_reachable(gen.lfsr(4))) == 15

    def test_custom_initial_states(self):
        circuit = gen.shift_register(3)
        # from {111} everything is still reachable through the input
        reachable = explicit_reachable(
            circuit, initial_states=[(True, True, True)]
        )
        assert len(reachable) == 8

    def test_multiple_initial_states(self):
        circuit = gen.johnson(3)
        # seeding with an unreachable-from-zero state adds its orbit
        both = explicit_reachable(
            circuit,
            initial_states=[(False,) * 3, (True, False, True)],
        )
        assert len(both) > 6

    def test_max_states_enforced(self):
        with pytest.raises(CircuitError):
            explicit_reachable(gen.counter(8), max_states=10)

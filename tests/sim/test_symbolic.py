"""Symbolic simulator tests: agreement with the concrete oracle."""

import itertools
import random

import pytest

from repro.bdd import BDD
from repro.circuits import generators as gen
from repro.circuits.iscas import s27
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError
from repro.sim import ConcreteSimulator, SymbolicSimulator


def agreement_check(circuit):
    """Exhaustively compare symbolic and concrete next-state functions."""
    bdd = BDD()
    input_vars = {net: bdd.add_var("x_" + net) for net in circuit.inputs}
    state_vars = {net: bdd.add_var("s_" + net) for net in circuit.latches}
    symbolic = SymbolicSimulator(bdd, circuit)
    deltas = symbolic.transition_functions(input_vars, state_vars)
    concrete = ConcreteSimulator(circuit)
    state_nets = circuit.state_nets
    for state in itertools.product([False, True], repeat=len(state_nets)):
        for inputs in itertools.product(
            [False, True], repeat=len(circuit.inputs)
        ):
            input_env = dict(zip(circuit.inputs, inputs))
            expected = concrete.step(state, input_env)
            assignment = {state_vars[n]: v for n, v in zip(state_nets, state)}
            assignment.update(
                {input_vars[n]: v for n, v in zip(circuit.inputs, inputs)}
            )
            got = tuple(bdd.evaluate(d, assignment) for d in deltas)
            assert got == expected, (circuit.name, state, inputs)


class TestAgreementWithConcrete:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gen.counter(3),
            lambda: gen.mod_counter(3, 5),
            lambda: gen.lfsr(4),
            lambda: gen.johnson(4),
            lambda: gen.token_ring(3),
            lambda: gen.coupled_pairs(2),
            lambda: gen.fifo_controller(1),
            lambda: gen.round_robin_arbiter(3),
            lambda: gen.traffic_light(),
            lambda: gen.random_control(5, seed=2),
            s27,
        ],
        ids=lambda f: "circuit",
    )
    def test_families(self, factory):
        agreement_check(factory())


class TestDrivers:
    def test_missing_input_driver(self):
        circuit = gen.counter(2)
        bdd = BDD()
        sim = SymbolicSimulator(bdd, circuit)
        with pytest.raises(CircuitError):
            sim.next_state({"s0": bdd.true, "s1": bdd.true})

    def test_missing_state_driver(self):
        circuit = gen.counter(2)
        bdd = BDD(["en"])
        sim = SymbolicSimulator(bdd, circuit)
        with pytest.raises(CircuitError):
            sim.next_state({"en": bdd.var("en")})

    def test_function_drivers(self):
        # Driving state nets with functions computes delta composed with
        # them -- the BFV image-computation front end.
        circuit = gen.shift_register(2)
        bdd = BDD(["d", "a"])
        sim = SymbolicSimulator(bdd, circuit)
        a = bdd.var("a")
        deltas = sim.next_state(
            {"d": bdd.var("d"), "s0": a, "s1": bdd.not_(a)}
        )
        # next s0 = d; next s1 = s0 = a
        assert deltas[0] == bdd.var("d")
        assert deltas[1] == a

    def test_outputs(self):
        circuit = gen.counter(2)
        bdd = BDD(["en", "s0", "s1"])
        sim = SymbolicSimulator(bdd, circuit)
        outs = sim.outputs(
            {"en": bdd.var("en"), "s0": bdd.var("s0"), "s1": bdd.var("s1")}
        )
        assert outs["s1"] == bdd.var("s1")

    def test_wide_gate_ops(self):
        circuit = Circuit("wide")
        for name in ("a", "b", "c"):
            circuit.add_input(name)
        circuit.add_gate("n1", "NAND", ("a", "b", "c"))
        circuit.add_gate("n2", "NOR", ("a", "b", "c"))
        circuit.add_gate("n3", "XNOR", ("a", "b", "c"))
        circuit.add_gate("n4", "BUF", ("a",))
        circuit.add_latch("q", "n3")
        circuit.validate()
        agreement_check(circuit)

"""Symbolic trajectory evaluation tests."""

import pytest

from repro.bdd import BDD
from repro.circuits import generators as gen
from repro.circuits.netlist import Circuit
from repro.errors import ReproError
from repro.ste import STE, conj, equals, guard, is0, is1, next_
from repro.ste.engine import TernaryValue
from repro.ste.formulas import depth, flatten


@pytest.fixture
def bdd():
    return BDD(["a", "b", "c"])


class TestFormulas:
    def test_depth(self, bdd):
        f = next_(is1("x"), 3) & is0("y")
        assert depth(f) == 4

    def test_flatten_guards_accumulate(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = guard(a, guard(b, is1("n")))
        leaves = flatten(bdd, f)
        assert leaves == [(0, "n", True, bdd.and_(a, b))]

    def test_flatten_next_shifts_time(self, bdd):
        f = next_(is0("n") & next_(is1("m")))
        leaves = sorted(flatten(bdd, f))
        assert leaves == [(1, "n", False, bdd.true), (2, "m", True, bdd.true)]

    def test_conj_builder(self, bdd):
        f = conj(is1("x"), is0("y"), is1("z"))
        assert len(flatten(bdd, f)) == 3
        with pytest.raises(ReproError):
            conj()

    def test_negative_next(self):
        with pytest.raises(ReproError):
            next_(is1("x"), -1)


class TestCombinational:
    def test_and_gate(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.and_("o", "a", "b")
        circuit.add_output("o")
        circuit.validate()
        bdd = BDD([])
        ste = STE(bdd, circuit)
        # 1 & 1 = 1
        result = ste.check(is1("a") & is1("b"), is1("o"))
        assert result.passes
        # 0 & X = 0 (the ternary short-circuit STE exploits)
        result = ste.check(is0("a"), is0("o"))
        assert result.passes
        # X & 1 is X: cannot conclude 1
        result = ste.check(is1("b"), is1("o"))
        assert not result.passes

    def test_symbolic_case_split(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.xor("o", "a", "b")
        circuit.add_output("o")
        circuit.validate()
        bdd = BDD(["va", "vb"])
        ste = STE(bdd, circuit)
        antecedent = equals(bdd, "a", "va") & equals(bdd, "b", "vb")
        # o == va XOR vb, expressed as two guarded leaves
        vo = bdd.xor(bdd.var("va"), bdd.var("vb"))
        consequent = guard(vo, is1("o")) & guard(bdd.not_(vo), is0("o"))
        result = ste.check(antecedent, consequent)
        assert result.passes

    def test_counterexample_assignment(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.not_("o", "a")
        circuit.add_output("o")
        circuit.validate()
        bdd = BDD(["va"])
        ste = STE(bdd, circuit)
        # wrong spec: o == a
        antecedent = equals(bdd, "a", "va")
        wrong = guard(bdd.var("va"), is1("o"))
        result = ste.check(antecedent, wrong)
        assert not result.passes
        assert result.counterexample == {"va": True}


class TestSequential:
    def test_shift_register_pipeline(self):
        circuit = gen.shift_register(3)
        bdd = BDD(["v"])
        ste = STE(bdd, circuit)
        antecedent = equals(bdd, "d", "v")
        v = bdd.var("v")
        consequent = next_(
            guard(v, is1("s2")) & guard(bdd.not_(v), is0("s2")), 3
        )
        result = ste.check(antecedent, consequent)
        assert result.passes

    def test_shift_register_too_early_fails(self):
        circuit = gen.shift_register(3)
        bdd = BDD(["v"])
        ste = STE(bdd, circuit)
        antecedent = equals(bdd, "d", "v")
        v = bdd.var("v")
        early = next_(guard(v, is1("s2")), 2)  # one cycle too early
        result = ste.check(antecedent, early)
        assert not result.passes

    def test_latches_start_x(self):
        circuit = gen.shift_register(2)
        bdd = BDD([])
        ste = STE(bdd, circuit)
        # With nothing driven, the registers stay X: no conclusion.
        result = ste.check(is1("d"), next_(is1("s1")))
        assert not result.passes
        # But the driven bit does arrive at s1 after two cycles.
        result = ste.check(is1("d"), next_(is1("s0")))
        assert result.passes

    def test_counter_enable_chain(self):
        circuit = gen.counter(2)
        bdd = BDD([])
        ste = STE(bdd, circuit)
        # Registers start X, so even with en=1 the sum bits stay X...
        result = ste.check(is1("en"), next_(is1("s0")))
        assert not result.passes
        # ...but forcing the state to 0 first makes the step definite.
        antecedent = conj(
            is0("s0"), is0("s1"), is1("en"), next_(is1("en"))
        )
        consequent = next_(is1("s0") & is0("s1")) & next_(
            is0("s0") & is1("s1"), 2
        )
        result = ste.check(antecedent, consequent)
        assert result.passes


class TestAntecedentFailure:
    def test_contradiction_is_vacuous(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.not_("o", "a")
        circuit.add_output("o")
        circuit.validate()
        bdd = BDD([])
        ste = STE(bdd, circuit)
        # Force a=1 and o=1: the circuit makes o=0, contradiction;
        # the assertion is vacuously true there.
        antecedent = is1("a") & is1("o")
        result = ste.check(antecedent, is0("a"))
        assert result.antecedent_failure == bdd.true
        assert result.passes

    def test_partial_failure_region(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.not_("o", "a")
        circuit.add_output("o")
        circuit.validate()
        bdd = BDD(["g"])
        ste = STE(bdd, circuit)
        g = bdd.var("g")
        # Under g: contradictory; under !g: fine but proves nothing new.
        antecedent = is1("a") & guard(g, is1("o"))
        result = ste.check(antecedent, guard(g, is1("o")))
        assert result.antecedent_failure == g
        assert result.passes  # vacuous under g, satisfied trivially under !g

    def test_unknown_net_rejected(self):
        circuit = gen.counter(2)
        bdd = BDD([])
        ste = STE(bdd, circuit)
        with pytest.raises(ReproError):
            ste.check(is1("nope"), is1("s0"))


class TestTernaryAlgebra:
    def test_gate_tables(self):
        bdd = BDD([])
        ste = STE(bdd, gen.counter(2))
        one = TernaryValue(bdd.true, bdd.false)
        zero = TernaryValue(bdd.false, bdd.true)
        x = TernaryValue(bdd.true, bdd.true)
        # AND: 0 dominates X
        assert ste._and(zero, x) == zero
        assert ste._and(one, x) == x
        assert ste._and(one, one) == one
        # OR: 1 dominates X
        assert ste._or(one, x) == one
        assert ste._or(zero, x) == x
        # XOR: any X poisons
        assert ste._xor(one, x) == x
        assert ste._xor(one, zero) == one
        assert ste._xor(one, one) == zero
        # NOT swaps rails
        assert ste._not(one) == zero
        assert ste._not(x) == x


class TestWaveform:
    def test_shift_register_pipeline_view(self):
        circuit = gen.shift_register(3)
        bdd = BDD(["v"])
        ste = STE(bdd, circuit)
        rows = ste.waveform(
            equals(bdd, "d", "v"),
            steps=4,
            assignment={"v": True},
            nets=["d", "s0", "s1", "s2"],
        )
        # the driven 1 marches down the pipeline; undriven cycles are X
        assert rows[0]["d"] == "1"
        assert rows[0]["s0"] == "X"
        assert rows[1]["s0"] == "1"
        assert rows[2]["s1"] == "1"
        assert rows[3]["s2"] == "1"
        assert rows[1]["d"] == "X"  # input only driven at time 0

    def test_overconstrained_shows_bang(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.not_("o", "a")
        circuit.add_output("o")
        circuit.validate()
        bdd = BDD([])
        ste = STE(bdd, circuit)
        rows = ste.waveform(is1("a") & is1("o"), steps=1)
        assert rows[0]["a"] == "1"
        assert rows[0]["o"] == "!"

    def test_default_assignment_and_nets(self):
        circuit = gen.counter(2)
        bdd = BDD([])
        ste = STE(bdd, circuit)
        rows = ste.waveform(is0("s0") & is0("s1") & is1("en"), steps=2)
        assert rows[0]["s0"] == "0"
        assert rows[1]["s0"] == "1"  # counted once
        assert rows[1]["en"] == "X"  # enable only driven at time 0

"""CLI tests (``python -m repro``)."""

import pytest

from repro.circuits import bench, generators
from repro.cli import builtin_circuits, main, resolve_circuit


class TestResolve:
    def test_builtin_names(self):
        catalog = builtin_circuits()
        assert "s27" in catalog and "s4863s" in catalog
        circuit = resolve_circuit("s27")
        assert circuit.num_latches == 3

    def test_bench_path(self, tmp_path):
        path = tmp_path / "c.bench"
        bench.dump(generators.counter(3), str(path))
        circuit = resolve_circuit(str(path))
        assert circuit.num_latches == 3

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            resolve_circuit("no_such_circuit_42")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s3271s" in out and "FFs" in out

    def test_info(self, capsys):
        assert main(["info", "s27"]) == 0
        out = capsys.readouterr().out
        assert "latches  3" in out

    def test_reach_default_engine(self, capsys):
        assert main(["reach", "s27"]) == 0
        out = capsys.readouterr().out
        assert "6 reachable states" in out
        assert "bfv" in out

    def test_reach_all_engines(self, capsys):
        assert main(["reach", "s27", "--engine", "all", "--order", "S2"]) == 0
        out = capsys.readouterr().out
        for engine in ("bfv", "tr", "cbm", "conj"):
            assert engine in out

    def test_reach_no_count(self, capsys):
        assert main(["reach", "counter8", "--no-count"]) == 0
        out = capsys.readouterr().out
        assert "reachable states" not in out
        assert "completed" in out

    def test_reach_budget_timeout(self, capsys):
        assert (
            main(["reach", "s1269s", "--engine", "bfv", "--max-seconds", "0"])
            == 0
        )
        out = capsys.readouterr().out
        assert "did not complete" in out and "T.O." in out

    def test_reach_bench_file(self, capsys, tmp_path):
        path = tmp_path / "lfsr.bench"
        bench.dump(generators.lfsr(4), str(path))
        assert main(["reach", str(path), "--engine", "tr"]) == 0
        out = capsys.readouterr().out
        # DFF init is 0 in .bench: the all-zero LFSR state is absorbing.
        assert "1 reachable states" in out


class TestEquivCommand:
    def test_equivalent(self, capsys, tmp_path):
        from repro.circuits import bench, generators

        path_a = tmp_path / "a.bench"
        path_b = tmp_path / "b.bench"
        bench.dump(generators.counter(3), str(path_a))
        bench.dump(generators.counter(3), str(path_b))
        assert main(["equiv", str(path_a), str(path_b)]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent(self, capsys, tmp_path):
        from repro.circuits import bench, generators
        from repro.circuits.netlist import Circuit

        path_a = tmp_path / "a.bench"
        bench.dump(generators.shift_register(2), str(path_a))
        other = Circuit("other")
        other.add_input("d")
        other.add_latch("q0", "d")
        other.add_latch("s1", "q0x")
        other.not_("q0x", "q0")  # inverted second stage
        other.add_output("s1")
        other.validate()
        path_b = tmp_path / "b.bench"
        bench.dump(other, str(path_b))
        assert main(["equiv", str(path_a), str(path_b)]) == 1
        out = capsys.readouterr().out
        assert "NOT EQUIVALENT" in out

    def test_inconclusive(self, capsys):
        assert (
            main(["equiv", "counter8", "counter8", "--max-seconds", "0"]) == 2
        )
        assert "inconclusive" in capsys.readouterr().out


class TestCheckCommand:
    def test_holding_invariant(self, capsys):
        # a mod-counter's wrap output IS reachable; use the ring instead:
        # the token ring's output is its last station bit -- reachable.
        # Build a .bench whose output is constant-false logic.
        assert main(["check", "ring8", "s7"]) == 1  # token reaches s7
        assert "VIOLATED" in capsys.readouterr().out

    def test_violation_with_vcd(self, capsys, tmp_path):
        path = tmp_path / "trace.vcd"
        code = main(["check", "fifo3", "full", "--vcd", str(path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "8 cycles" in out
        assert path.read_text().startswith("$timescale")

    def test_inconclusive(self, capsys):
        assert main(["check", "s4863s", "r2_9", "--max-seconds", "0"]) == 2
        assert "inconclusive" in capsys.readouterr().out

    def test_provable_hold(self, capsys, tmp_path):
        # A circuit whose output is never high: q AND NOT q.
        from repro.circuits import bench
        from repro.circuits.netlist import Circuit

        circuit = Circuit("never")
        circuit.add_input("x")
        circuit.add_latch("q", "x")
        circuit.not_("nq", "q")
        circuit.and_("dead", "q", "nq")
        circuit.add_output("dead")
        circuit.validate()
        path = tmp_path / "never.bench"
        bench.dump(circuit, str(path))
        assert main(["check", str(path), "dead"]) == 0
        assert "HOLDS" in capsys.readouterr().out

"""Smoke tests: every shipped example must run green end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "Table 1" in proc.stdout
        assert "True" in proc.stdout

    def test_invariant_checking(self):
        proc = run_example("invariant_checking.py")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("HOLDS") == 2
        assert "VIOLATED" in proc.stdout
        assert "counterexample state" in proc.stdout

    def test_counterexample_traces(self):
        proc = run_example("counterexample_traces.py")
        assert proc.returncode == 0, proc.stderr
        assert "secret code extracted" in proc.stdout

    def test_ordering_study(self):
        proc = run_example("ordering_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "pairs separated" in proc.stdout

    def test_reachability_comparison(self):
        proc = run_example("reachability_comparison.py", "s27", "S2")
        assert proc.returncode == 0, proc.stderr
        assert "agree on the reached set size: 6" in proc.stdout

    def test_reachability_comparison_unknown_circuit(self):
        proc = run_example("reachability_comparison.py", "bogus")
        assert proc.returncode == 1
        assert "unknown circuit" in proc.stdout

    def test_datapath_verification(self):
        proc = run_example("datapath_verification.py")
        assert proc.returncode == 0, proc.stderr
        assert "value emerges after 6 cycles: True" in proc.stdout
        assert "NOT equivalent" in proc.stdout

    def test_protocol_analysis(self):
        proc = run_example("protocol_analysis.py")
        assert proc.returncode == 0, proc.stderr
        assert "coherence invariant holds: True" in proc.stdout
        assert "reset state among them: False" in proc.stdout

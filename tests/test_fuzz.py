"""Cross-layer fuzzing with randomly generated sequential circuits.

A hypothesis strategy builds arbitrary valid netlists (random gate
types, fan-ins, latch feedback); every property then crosses at least
two independently implemented layers:

* symbolic simulation vs the concrete simulator;
* all four reachability engines vs explicit-state search;
* format round-trips (.bench and BLIF) vs reachable-set equality;
* resynthesis vs sequential equivalence.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import bench, blif
from repro.circuits.netlist import Circuit
from repro.mc import check_equivalence
from repro.reach import ENGINES
from repro.sim import ConcreteSimulator, SymbolicSimulator, explicit_reachable
from repro.synth import resynthesize

GATE_OPS = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF"]


def random_circuit(seed: int, max_latches=5, max_inputs=3, max_gates=14) -> Circuit:
    """A random, valid sequential circuit (deterministic per seed)."""
    rng = random.Random(seed)
    circuit = Circuit("fuzz%d" % seed)
    n_inputs = rng.randint(1, max_inputs)
    n_latches = rng.randint(1, max_latches)
    n_gates = rng.randint(n_latches, max_gates)
    for i in range(n_inputs):
        circuit.add_input("x%d" % i)
    for i in range(n_latches):
        circuit.add_latch("q%d" % i, "g%d" % rng.randrange(n_gates), rng.random() < 0.3)
    available = ["x%d" % i for i in range(n_inputs)] + [
        "q%d" % i for i in range(n_latches)
    ]
    for i in range(n_gates):
        op = rng.choice(GATE_OPS)
        if op in ("NOT", "BUF"):
            fanin = [rng.choice(available)]
        else:
            fanin = [
                rng.choice(available)
                for _ in range(rng.randint(2, min(3, len(available))))
            ]
        circuit.add_gate("g%d" % i, op, fanin)
        available.append("g%d" % i)
    # expose a couple of outputs
    circuit.add_output("g%d" % (n_gates - 1))
    circuit.add_output("q0")
    circuit.validate()
    return circuit


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_symbolic_matches_concrete(seed):
    import itertools

    from repro.bdd import BDD

    circuit = random_circuit(seed)
    bdd = BDD()
    input_vars = {net: bdd.add_var("x_" + net) for net in circuit.inputs}
    state_vars = {net: bdd.add_var("s_" + net) for net in circuit.latches}
    deltas = SymbolicSimulator(bdd, circuit).transition_functions(
        input_vars, state_vars
    )
    concrete = ConcreteSimulator(circuit)
    nets = circuit.state_nets
    rng = random.Random(seed ^ 0xF00D)
    for _ in range(12):
        state = tuple(rng.random() < 0.5 for _ in nets)
        inputs = {net: rng.random() < 0.5 for net in circuit.inputs}
        expected = concrete.step(state, inputs)
        assignment = {state_vars[n]: v for n, v in zip(nets, state)}
        assignment.update({input_vars[n]: v for n, v in inputs.items()})
        got = tuple(bdd.evaluate(d, assignment) for d in deltas)
        assert got == expected


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_engines_agree_with_explicit(seed):
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    truth = explicit_reachable(circuit)
    for engine in ("bfv", "tr"):
        result = ENGINES[engine](circuit)
        assert result.completed
        assert result.num_states == len(truth), (engine, seed)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_blif_roundtrip(seed):
    circuit = random_circuit(seed)
    reparsed = blif.loads(blif.dumps(circuit), circuit.name)
    assert reparsed.initial_state == circuit.initial_state
    assert explicit_reachable(reparsed) == explicit_reachable(circuit)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_bench_roundtrip_from_zero_state(seed):
    circuit = random_circuit(seed)
    reparsed = bench.loads(bench.dumps(circuit), circuit.name)
    zeros = [tuple([False] * circuit.num_latches)]
    assert explicit_reachable(
        reparsed, initial_states=zeros
    ) == explicit_reachable(circuit, initial_states=zeros)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_resynthesis_equivalent(seed):
    circuit = random_circuit(seed, max_latches=4, max_gates=10)
    rebuilt = resynthesize(circuit)
    assert check_equivalence(circuit, rebuilt).holds

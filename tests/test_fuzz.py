"""Cross-layer fuzzing with randomly generated sequential circuits.

A hypothesis strategy builds arbitrary valid netlists (random gate
types, fan-ins, latch feedback); every property then crosses at least
two independently implemented layers:

* symbolic simulation vs the concrete simulator;
* the eight-engine *differential campaign*: the explicit **bitset
  backend** (:mod:`repro.backends.bitset`, zero shared code with the
  BDD substrate) is the ground truth — itself cross-checked against
  :func:`repro.sim.explicit_reachable` on every seed — and all six
  BDD-substrate engines must agree with it on the reached-set
  characteristic function, the state count, and the fix-point depth
  (exact depth for the breadth-first engines and the bitset engine,
  the saturation-depth contract ``1 <= rounds <= bfs_depth`` for the
  chained engines); the **logical-zonotope backend** is compared by
  equality where its ``exact`` flag holds and containment-checked
  (never an under-approximation) where it does not;
* the same corpus pushed through the parallel batch scheduler, checking
  its jobs=1 vs jobs=N determinism guarantee on real work;
* format round-trips (.bench and BLIF) vs reachable-set equality;
* resynthesis vs sequential equivalence.
"""

import itertools
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import bench, blif
from repro.circuits.netlist import Circuit
from repro.mc import check_equivalence
from repro.reach import ENGINES
from repro.sim import ConcreteSimulator, SymbolicSimulator, explicit_reachable
from repro.synth import resynthesize

GATE_OPS = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF"]

#: Engines that compute one monolithic image per breadth-first
#: iteration — their fix-point depths must agree exactly.
BFS_ENGINES = ("bfv", "tr", "cbm", "conj")

#: Saturation engines chain partial images to local fix points, so they
#: report *macro rounds*; every round dominates one breadth-first
#: image, hence ``1 <= rounds <= bfs_depth`` (the saturation-depth
#: contract asserted by the campaign).
SATURATION_ENGINES = ("sat", "bfv-sat")

#: The six engines built on the shared BDD substrate — the audit
#: subjects of the campaign.
BDD_ENGINES = BFS_ENGINES + SATURATION_ENGINES

#: Non-BDD set-representation backends (:mod:`repro.backends`):
#: ``bitset`` is the campaign's exact ground truth, ``zono`` the
#: exactness-flagged over-approximation.
BACKEND_ENGINES = ("bitset", "zono")

#: The full eight-engine differential matrix.
ALL_ENGINES = BDD_ENGINES + BACKEND_ENGINES

#: Number of seeds in the differential campaign.  The default keeps
#: tier-1 fast; CI's differential job raises it (REPRO_FUZZ_SEEDS=200).
DIFFERENTIAL_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", "40"))

#: Sanitizer rate for the campaign's engine runs (None = off).  CI's
#: sanitized slice sets REPRO_SANITIZE=1.0 so every-iteration invariant
#: auditing rides the differential probes (see docs/analysis.md).
SANITIZE_RATE = float(os.environ.get("REPRO_SANITIZE", "0") or "0") or None


#: Gate ops over GF(2)-linear functions only — circuits built from
#: these are the logical-zonotope backend's best case (though even a
#: purely linear transition map can reach a non-affine set, so
#: exactness is still discovered per seed, not assumed).
LINEAR_OPS = ["XOR", "XNOR", "NOT", "BUF"]

#: Gate ops with no linear gates at all — every 2+-input gate spends a
#: zonotope residue generator, the over-approximation worst case.
AND_OPS = ["AND", "OR", "NAND", "NOR", "NOT", "BUF"]


def random_circuit(
    seed: int, max_latches=5, max_inputs=3, max_gates=14, ops=GATE_OPS
) -> Circuit:
    """A random, valid sequential circuit (deterministic per seed).

    ``ops`` restricts the gate alphabet — :data:`LINEAR_OPS` /
    :data:`AND_OPS` build the XOR-dominated and AND-heavy corpora the
    zonotope exactness pins use.
    """
    rng = random.Random(seed)
    circuit = Circuit("fuzz%d" % seed)
    n_inputs = rng.randint(1, max_inputs)
    n_latches = rng.randint(1, max_latches)
    n_gates = rng.randint(n_latches, max_gates)
    for i in range(n_inputs):
        circuit.add_input("x%d" % i)
    for i in range(n_latches):
        circuit.add_latch("q%d" % i, "g%d" % rng.randrange(n_gates), rng.random() < 0.3)
    available = ["x%d" % i for i in range(n_inputs)] + [
        "q%d" % i for i in range(n_latches)
    ]
    for i in range(n_gates):
        op = rng.choice(ops)
        if op in ("NOT", "BUF"):
            fanin = [rng.choice(available)]
        else:
            fanin = [
                rng.choice(available)
                for _ in range(rng.randint(2, min(3, len(available))))
            ]
        circuit.add_gate("g%d" % i, op, fanin)
        available.append("g%d" % i)
    # expose a couple of outputs
    circuit.add_output("g%d" % (n_gates - 1))
    circuit.add_output("q0")
    circuit.validate()
    return circuit


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_symbolic_matches_concrete(seed):
    import itertools

    from repro.bdd import BDD

    circuit = random_circuit(seed)
    bdd = BDD()
    input_vars = {net: bdd.add_var("x_" + net) for net in circuit.inputs}
    state_vars = {net: bdd.add_var("s_" + net) for net in circuit.latches}
    deltas = SymbolicSimulator(bdd, circuit).transition_functions(
        input_vars, state_vars
    )
    concrete = ConcreteSimulator(circuit)
    nets = circuit.state_nets
    rng = random.Random(seed ^ 0xF00D)
    for _ in range(12):
        state = tuple(rng.random() < 0.5 for _ in nets)
        inputs = {net: rng.random() < 0.5 for net in circuit.inputs}
        expected = concrete.step(state, inputs)
        assignment = {state_vars[n]: v for n, v in zip(nets, state)}
        assignment.update({input_vars[n]: v for n, v in inputs.items()})
        got = tuple(bdd.evaluate(d, assignment) for d in deltas)
        assert got == expected


def reached_states(result):
    """Reachable set as declaration-order tuples, from any engine.

    Each engine leaves its reached-set representation in
    ``result.extra`` under a different key (a :class:`~repro.bfv.BFV`,
    a conjunctive decomposition, a plain characteristic function, or —
    for the backend engines — the already-enumerated
    ``"reached_states"`` set); this normalizes all of them to the
    explicit-search state format so the differential campaign can
    compare characteristic functions, not just cardinalities.
    """
    extra = result.extra
    if "reached_states" in extra:
        return set(extra["reached_states"])
    space = extra["space"]
    if "reached" in extra:
        contains = extra["reached"].contains
    elif "reached_cd" in extra:
        contains = extra["reached_cd"].contains
    else:
        chi = extra["reached_chi"]

        def contains(point, _bdd=space.bdd, _chi=chi, _vars=space.s_vars):
            return _bdd.evaluate(_chi, dict(zip(_vars, point)))

    declaration = list(space.circuit.latches)
    index = {net: i for i, net in enumerate(space.state_order)}
    states = set()
    for point in itertools.product((False, True), repeat=len(declaration)):
        if contains(point):
            states.add(tuple(point[index[net]] for net in declaration))
    return states


def assert_engines_agree(seed):
    """One differential-campaign probe: eight engines, bitset as oracle.

    The explicit bitset backend is the ground truth; before anything is
    measured against it, it is itself cross-checked against
    :func:`repro.sim.explicit_reachable` — two independently
    implemented oracles must agree before either is trusted.  Every
    BDD-substrate engine must then match the truth on the reached-set
    characteristic function (by exhaustive membership) and on the state
    count; on the fix-point depth (iteration count) exactly for the
    breadth-first engines and the bitset engine, and via the
    saturation-depth contract (``1 <= rounds <= bfs_depth``) for the
    chained engines — any divergence in image computation, union
    exclusion conditions, or fix-point detection shows up here.  The
    zonotope backend is held to its exactness contract instead: set
    equality whenever it reports ``exact``, and containment (sound
    over-approximation, never an under-approximation) plus the
    coset-growth iteration bound ``1 <= iters <= latches + 1``
    otherwise.
    """
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    truth = set(explicit_reachable(circuit))

    ground = ENGINES["bitset"](circuit, sanitize=SANITIZE_RATE)
    assert ground.completed, ("bitset", seed, ground.failure)
    assert ground.extra["exact"] is True, seed
    assert reached_states(ground) == truth, ("bitset-vs-explicit", seed)
    assert ground.num_states == len(truth), ("bitset", seed)

    results = {}
    for engine in BDD_ENGINES:
        result = ENGINES[engine](circuit, sanitize=SANITIZE_RATE)
        assert result.completed, (engine, seed, result.failure)
        results[engine] = result
    depth = results[BFS_ENGINES[0]].iterations
    assert ground.iterations == depth, ("bitset-depth", seed)
    for engine, result in results.items():
        assert result.num_states == len(truth), (engine, seed)
        if engine in SATURATION_ENGINES:
            assert 1 <= result.iterations <= depth, (engine, seed)
        else:
            assert result.iterations == depth, (engine, seed)
        assert reached_states(result) == truth, (engine, seed)

    zono = ENGINES["zono"](circuit, sanitize=SANITIZE_RATE)
    assert zono.completed, ("zono", seed, zono.failure)
    zono_states = reached_states(zono)
    assert truth <= zono_states, ("zono-under-approximation", seed)
    assert zono.num_states == len(zono_states), ("zono-count", seed)
    assert 1 <= zono.iterations <= circuit.num_latches + 1, ("zono", seed)
    if zono.extra["exact"]:
        assert zono_states == truth, ("zono-exact-mismatch", seed)


@pytest.mark.parametrize("seed", range(DIFFERENTIAL_SEEDS))
def test_differential_campaign(seed):
    assert_engines_agree(seed)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_engines_agree_with_explicit(seed):
    # The hypothesis twin of the pinned campaign: same property, random
    # high seeds, so regressions outside the pinned range still surface.
    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    truth = explicit_reachable(circuit)
    depth = None
    for engine in ALL_ENGINES:
        result = ENGINES[engine](circuit)
        assert result.completed
        if engine == "zono":
            # Over-approximation contract: never fewer states than the
            # truth, and rank growth bounds the iteration count.
            assert result.num_states >= len(truth), (engine, seed)
            assert 1 <= result.iterations <= circuit.num_latches + 1
            continue
        assert result.num_states == len(truth), (engine, seed)
        if engine in SATURATION_ENGINES:
            assert 1 <= result.iterations <= depth, (engine, seed)
            continue
        if depth is None:
            depth = result.iterations
        assert result.iterations == depth, (engine, seed)


def test_fuzz_corpus_through_scheduler(tmp_path):
    """Push a serialized fuzz corpus through the parallel scheduler.

    Two cross-checks at once: the scheduler's determinism guarantee
    (jobs=1 and jobs=2 merged reports are byte-identical on real work)
    and cross-engine agreement along the scheduler path for the full
    eight-engine matrix (every exact engine reports the same state
    count per corpus entry — breadth-first engines and the bitset
    backend additionally the same fix-point depth, saturation engines
    the depth contract, the zonotope backend the over-approximation
    contract — with circuits resolved from .bench files in supervised
    children).
    """
    from repro.harness import run_scheduled_batch

    paths = []
    for seed in range(4):
        circuit = random_circuit(
            seed, max_latches=4, max_inputs=2, max_gates=10
        )
        path = tmp_path / ("fuzz%d.bench" % seed)
        bench.dump(circuit, str(path))
        paths.append(str(path))

    by_engine = {}
    for engine in ALL_ENGINES:
        reports = {}
        for jobs in (1, 2):
            report = run_scheduled_batch(
                paths,
                engine=engine,
                jobs=jobs,
                max_seconds=60.0,
                fallback=False,
                isolate=True,
            )
            assert report.failures == 0, (engine, jobs)
            reports[jobs] = report
        assert reports[1].to_json() == reports[2].to_json(), engine
        by_engine[engine] = {
            os.path.basename(job["circuit"]): (
                job["outcome"]["iterations"],
                job["outcome"]["num_states"],
            )
            for job in reports[2].merged()["jobs"]
        }
    reference = by_engine[ALL_ENGINES[0]]
    for engine, summary in by_engine.items():
        assert summary.keys() == reference.keys(), engine
        for name, (iterations, num_states) in summary.items():
            ref_iterations, ref_num_states = reference[name]
            if engine == "zono":
                # Over-approximation: at least the exact count, and the
                # coset-rank iteration bound (corpus circuits have at
                # most 4 latches).
                assert num_states >= ref_num_states, (engine, name)
                assert 1 <= iterations <= 4 + 1, (engine, name)
                continue
            assert num_states == ref_num_states, (engine, name)
            if engine in SATURATION_ENGINES:
                # Saturation rounds obey the depth contract, not
                # breadth-first depth equality.
                assert 1 <= iterations <= ref_iterations, (engine, name)
            else:
                assert iterations == ref_iterations, (engine, name)


#: Corpus seeds whose (zero-initial) fix-point depth is >= 2, so a
#: fault at iteration 1 always interrupts before completion.
DISCONNECT_SEEDS = (0, 2, 5, 7, 8, 9)


@pytest.mark.parametrize("seed", DISCONNECT_SEEDS)
def test_disconnect_resume_matches_oracle(seed, tmp_path):
    """Dropped-client runs, resumed, agree with explicit search.

    The serve layer's degradation path on a fuzz corpus: a
    ``client_disconnect`` fault cancels the attempt mid-run (exactly
    what the server does when a connection breaks), the checkpoint it
    left behind seeds a resumed attempt, and the resumed result must
    match the explicit-state oracle — interrupted-and-resumed work is
    never allowed to differ from uninterrupted work.  Runs sanitized
    when the CI slice sets ``REPRO_SANITIZE``.
    """
    from repro.harness import AttemptSpec, run_attempt

    circuit = random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)
    path = tmp_path / "fuzz.bench"
    bench.dump(circuit, str(path))
    # The oracle searches the circuit as the server will see it: .bench
    # does not carry initial latch values, so reload before comparing.
    truth = explicit_reachable(bench.loads(bench.dumps(circuit), circuit.name))

    dropped = run_attempt(
        AttemptSpec(
            circuit=str(path),
            checkpoint_dir=str(tmp_path / "ckpt"),
            sanitize=SANITIZE_RATE,
            faults=[{"kind": "client_disconnect", "at_iteration": 1}],
        )
    )
    assert not dropped.completed
    assert dropped.failure == "cancelled"

    resumed = run_attempt(
        AttemptSpec(
            circuit=str(path),
            checkpoint_dir=str(tmp_path / "ckpt"),
            resume=True,
            sanitize=SANITIZE_RATE,
        )
    )
    assert resumed.completed
    assert resumed.extra["resumed_from"] >= 1
    # The resume never rewinds past the drop point.
    assert resumed.iterations >= dropped.extra["iteration"]
    assert resumed.num_states == len(truth), seed
    assert reached_states(resumed) == truth, seed


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_blif_roundtrip(seed):
    circuit = random_circuit(seed)
    reparsed = blif.loads(blif.dumps(circuit), circuit.name)
    assert reparsed.initial_state == circuit.initial_state
    assert explicit_reachable(reparsed) == explicit_reachable(circuit)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_bench_roundtrip_from_zero_state(seed):
    circuit = random_circuit(seed)
    reparsed = bench.loads(bench.dumps(circuit), circuit.name)
    zeros = [tuple([False] * circuit.num_latches)]
    assert explicit_reachable(
        reparsed, initial_states=zeros
    ) == explicit_reachable(circuit, initial_states=zeros)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_resynthesis_equivalent(seed):
    circuit = random_circuit(seed, max_latches=4, max_gates=10)
    rebuilt = resynthesize(circuit)
    assert check_equivalence(circuit, rebuilt).holds

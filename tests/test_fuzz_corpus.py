"""Pinned fuzz-seed regression corpus.

The differential campaign in :mod:`tests.test_fuzz` sweeps a seed range
that CI can scale up; this file pins the seeds whose circuits exercise
known-delicate corners — deep fix-points, near-empty and full reachable
fractions, duplicate gate fan-ins (the duplicate-polarity cube path),
XOR-heavy logic — so they run on every tier-1 invocation forever, plus
direct regressions for the union exclusion-condition corner cases, the
duplicate-polarity cube guard, and the expression depth limit.  A
second corpus pins the zonotope backend's exactness frontier:
XOR-dominated seeds where ``exact`` must hold with set equality, and
AND-heavy seeds where the backend must flag (and bound) its
over-approximation.
"""

import itertools

import pytest

from repro.bdd import BDD
from repro.bdd.expr import parse
from repro.bfv import BFV
from repro.errors import ResourceLimitError, VariableError
from repro.reach import ENGINES
from repro.sim import explicit_reachable

from tests.test_fuzz import (
    AND_OPS,
    LINEAR_OPS,
    assert_engines_agree,
    random_circuit,
)

#: Structurally diverse seeds, picked by scanning seeds 0..400 of
#: ``random_circuit(seed, max_latches=4, max_inputs=2, max_gates=10)``.
#: Comments give the property that earned each seed its pin.
PINNED_SEEDS = (
    141,  # deepest fix-point in range (8 iterations), dup fan-ins, XOR
    174,  # depth 5, 44% of the space reachable
    265,  # depth 6, dup fan-ins
    313,  # depth 6, XOR-heavy, no dup fan-ins
    314,  # depth 5, exactly half the space reachable
    338,  # depth 5, sparse (31%) without XOR
    324,  # depth 5, XOR-heavy
    1,    # degenerate: single latch, single reachable state
    61,   # two latches collapsing to a single reachable state
    263,  # full space reachable (union must saturate cleanly)
    0,    # sparse: 2 of 16 states reachable
    10,   # sparse + dup fan-ins + XOR
    21,   # sparse, 4 latches
    6,    # dup fan-ins, depth 4
    8,    # dup fan-ins, 3 latches
    9,    # dup fan-ins feeding XOR
    16,   # dup fan-ins, 9 of 16 states reachable
    17,   # dup fan-ins, exactly half reachable
    4,    # XOR without dup fan-ins
    13,   # XNOR path, sparse
)


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_pinned_seed_differential(seed):
    assert_engines_agree(seed)


#: XOR-dominated seeds (``random_circuit(..., ops=LINEAR_OPS)``) whose
#: reachable set the zonotope backend represents **exactly**, picked by
#: scanning seeds 0..250.  Exactness is a discovered property, not a
#: consequence of linearity — see ``test_linear_circuit_can_be_inexact``
#: — so each pin asserts the reported ``exact`` flag, the set equality
#: it promises, and covers 1–4 latches and fix-point depths up to 4.
ZONO_EXACT_SEEDS = (
    4,    # 3 latches, depth 3, half the space reachable
    9,    # 3 latches, dup fan-ins, half the space
    24,   # 2 latches saturating to the full space
    32,   # 2 latches, depth 3, full space
    65,   # 3 latches, XNOR-heavy
    191,  # 4 latches, depth 3, quarter of the space
    221,  # 4 latches, depth 3, sparse
    236,  # 4 latches, depth 4, 8 states — deepest exact pin
    241,  # 3 latches, depth 3
    247,  # 3 latches, depth 3, NOT/BUF chains between XORs
)

#: AND-heavy seeds (``random_circuit(..., ops=AND_OPS)``) where the
#: zonotope backend *strictly* over-approximates (residue generators
#: survive into the state columns), picked by scanning seeds 0..120 for
#: blow-ups of 2x-8x.  Each pin asserts the ``exact`` flag is lowered
#: and the result still contains the truth — the sound-over-approximation
#: corner of the backend contract.
ZONO_OVER_SEEDS = (
    5,    # 3 latches: 8 reported vs 4 true states
    16,   # 4 latches: full space vs 4 true states (4x blow-up)
    46,   # 4 latches, depth 4: 8 vs 3
    100,  # 4 latches, depth 4: 8 vs 2 — sparsest truth in the set
    107,  # 4 latches, depth 5: full space vs 4
)


@pytest.mark.parametrize("seed", ZONO_EXACT_SEEDS)
def test_zono_exact_on_xor_dominated(seed):
    """XOR-dominated pins: ``exact`` is reported and truthful."""
    circuit = random_circuit(
        seed, max_latches=4, max_inputs=2, max_gates=10, ops=LINEAR_OPS
    )
    truth = set(explicit_reachable(circuit))
    result = ENGINES["zono"](circuit)
    assert result.completed, seed
    assert result.extra["exact"] is True, seed
    assert result.extra["reached_states"] == truth, seed
    assert result.num_states == len(truth), seed
    assert 1 <= result.iterations <= circuit.num_latches + 1, seed


@pytest.mark.parametrize("seed", ZONO_OVER_SEEDS)
def test_zono_over_approximates_and_heavy(seed):
    """AND-heavy pins: ``exact`` is lowered, the set never shrinks."""
    circuit = random_circuit(
        seed, max_latches=4, max_inputs=2, max_gates=10, ops=AND_OPS
    )
    truth = set(explicit_reachable(circuit))
    result = ENGINES["zono"](circuit)
    assert result.completed, seed
    assert result.extra["exact"] is False, seed
    states = result.extra["reached_states"]
    # Strictly more states than the truth: these pins are genuine
    # over-approximation corners, not exact sets mislabelled inexact.
    assert truth < states, seed
    assert result.num_states == len(states) > len(truth), seed
    # The bitset oracle agrees with the explicit searcher on the same
    # circuit, so the "truth" side of the comparison is cross-checked.
    ground = ENGINES["bitset"](circuit)
    assert ground.extra["reached_states"] == truth, seed


def test_linear_circuit_can_be_inexact():
    """Linearity of the gates does not imply an affine reachable set.

    Seed 16's LINEAR_OPS circuit reaches 9 of 16 states — an orbit of
    an affine map need not be a coset (e.g. a GF(2) matrix of order 3
    visits 3 points, never a power of two), which is why the zonotope
    backend computes ``exact`` dynamically instead of trusting the gate
    alphabet.
    """
    circuit = random_circuit(
        16, max_latches=4, max_inputs=2, max_gates=10, ops=LINEAR_OPS
    )
    truth = set(explicit_reachable(circuit))
    result = ENGINES["zono"](circuit)
    assert result.completed
    assert result.extra["exact"] is False
    assert truth < result.extra["reached_states"]


class TestUnionExclusionCorners:
    """Union (Sec 2.3) corner cases against the characteristic oracle.

    The exclusion-condition construction is the subtlest BFV operation;
    these pin the boundary set shapes where its conditions degenerate
    (empty operands, singletons, complements, saturation).
    """

    WIDTH = 3

    def setup_method(self):
        self.bdd = BDD()
        self.vars = [self.bdd.add_var("c%d" % i) for i in range(self.WIDTH)]

    def points(self, *masks):
        return [
            tuple(bool(m >> i & 1) for i in range(self.WIDTH)) for m in masks
        ]

    def chi_of(self, points):
        chi = self.bdd.false
        for p in points:
            chi = self.bdd.or_(
                chi, self.bdd.cube(dict(zip(self.vars, p)))
            )
        return chi

    def check_union(self, left_masks, right_masks):
        left = BFV.from_points(
            self.bdd, self.vars, self.points(*left_masks)
        )
        right = BFV.from_points(
            self.bdd, self.vars, self.points(*right_masks)
        )
        union = left.union(right)
        expected = self.chi_of(self.points(*set(left_masks + right_masks)))
        assert union.to_characteristic() == expected
        # Union is symmetric and canonical: same vector both ways.
        flipped = right.union(left)
        assert flipped.components == union.components

    def test_empty_is_identity(self):
        self.check_union((), (1, 6))
        self.check_union((), ())

    def test_idempotent(self):
        self.check_union((2, 5), (2, 5))

    def test_disjoint_singletons(self):
        self.check_union((0,), (7,))

    def test_complementary_points(self):
        # {000} with {111}: every component's exclusion condition is
        # live at once.
        self.check_union((0,), (7,))
        self.check_union((0, 7), (1, 6))

    def test_subset_absorbed(self):
        self.check_union((1,), (1, 3, 5))

    def test_overlapping_sets(self):
        self.check_union((0, 1, 2), (2, 3, 4))

    def test_saturating_to_universe(self):
        all_masks = tuple(range(1 << self.WIDTH))
        left = all_masks[::2]
        right = all_masks[1::2]
        self.check_union(left, right)
        union = BFV.from_points(
            self.bdd, self.vars, self.points(*left)
        ).union(BFV.from_points(self.bdd, self.vars, self.points(*right)))
        assert union.to_characteristic() == self.bdd.true

    def test_exhaustive_width_two(self):
        # Every pair of subsets of a 2-bit space: 16 x 16 unions against
        # the oracle, the complete truth table of the algorithm.
        bdd = BDD()
        vars2 = [bdd.add_var("b0"), bdd.add_var("b1")]
        subsets = []
        for mask in range(16):
            pts = [
                (bool(m & 1), bool(m >> 1 & 1))
                for m in range(4)
                if mask >> m & 1
            ]
            subsets.append(pts)
        for left_pts, right_pts in itertools.product(subsets, repeat=2):
            left = BFV.from_points(bdd, vars2, left_pts)
            right = BFV.from_points(bdd, vars2, right_pts)
            expected = set(map(tuple, left_pts)) | set(map(tuple, right_pts))
            union = left.union(right)
            got = {
                p
                for p in itertools.product((False, True), repeat=2)
                if union.contains(p)
            }
            assert got == expected, (left_pts, right_pts)


class TestDuplicatePolarityCube:
    def test_conflicting_polarity_raises(self):
        bdd = BDD()
        index = bdd.add_var("a")
        with pytest.raises(VariableError):
            # The same variable spelled by name and by index, with
            # opposite polarity: silently building FALSE would hide the
            # caller's bug.
            bdd.cube({"a": True, index: False})

    def test_consistent_duplicate_is_fine(self):
        bdd = BDD()
        index = bdd.add_var("a")
        node = bdd.cube({"a": True, index: True})
        assert node == bdd.var(index)

    def test_fuzz_cubes_match_evaluation(self):
        # Cubes over random assignments: the cube must accept exactly
        # its defining point.
        import random

        bdd = BDD()
        names = [bdd.add_var("v%d" % i) for i in range(4)]
        rng = random.Random(99)
        for _ in range(25):
            assignment = {v: rng.random() < 0.5 for v in names}
            node = bdd.cube(assignment)
            assert bdd.evaluate(node, assignment) is True
            flipped = dict(assignment)
            victim = rng.choice(names)
            flipped[victim] = not flipped[victim]
            assert bdd.evaluate(node, flipped) is False


class TestDepthLimits:
    def test_deep_expression_fails_cleanly(self):
        bdd = BDD()
        bdd.add_var("a")
        depth = 100_000
        text = "(" * depth + "a" + ")" * depth
        with pytest.raises(ResourceLimitError) as info:
            parse(bdd, text)
        assert info.value.kind == "depth"

    def test_reasonable_nesting_parses(self):
        bdd = BDD()
        index = bdd.add_var("a")
        text = "(" * 50 + "a" + ")" * 50
        assert parse(bdd, text) == bdd.var(index)

"""End-to-end workflow: the library as a downstream user would chain it.

One realistic pipeline per test, crossing many subsystems:
parse -> reach (all engines) -> persist -> reload -> minimize ->
equivalence -> STE, with consistency asserted at every joint.
"""

import io

import pytest

from repro import persist
from repro.bdd import BDD
from repro.bfv import from_characteristic
from repro.circuits import bench, blif, generators
from repro.circuits.iscas import S27_BENCH, s27
from repro.mc import check_equivalence, check_invariant, state_predicate
from repro.order import order_for
from repro.reach import ENGINES, backward_reachability
from repro.ste import STE, is0, is1, next_
from repro.synth import minimize_with_reachability, resynthesize


class TestS27Pipeline:
    """The full pipeline on the embedded ISCAS'89 s27 benchmark."""

    def test_parse_reach_persist_reload(self, tmp_path):
        # 1. parse from the .bench text
        circuit = bench.loads(S27_BENCH, "s27")
        # 2. all eight engines agree (6 states, the known result) —
        # except the zonotope backend, whose flagged over-approximation
        # must still contain the truth (8 = the enclosing affine coset).
        results = {
            name: engine(circuit, slots=order_for(circuit, "S2"))
            for name, engine in ENGINES.items()
        }
        counts = {
            name: r.num_states for name, r in results.items()
        }
        zono = results.pop("zono")
        assert {r.num_states for r in results.values()} == {6}, counts
        assert zono.extra["exact"] is False
        assert zono.num_states >= 6
        assert (
            results["bitset"].extra["reached_states"]
            <= zono.extra["reached_states"]
        )
        # 3. persist the BFV-reached set, reload in a fresh manager
        bfv_result = results["bfv"]
        space = bfv_result.extra["space"]
        reached = bfv_result.extra["reached"]
        path = tmp_path / "s27.reached"
        persist.save(str(path), space.bdd, vectors={"reached": reached})
        _, _, vectors = persist.load(str(path))
        assert vectors["reached"].count() == 6
        # 4. convert formats: bench -> blif -> bench, same reachability
        as_blif = blif.loads(blif.dumps(circuit), "s27")
        result = ENGINES["tr"](as_blif)
        assert result.num_states == 6

    def test_minimize_then_verify(self):
        circuit = s27()
        minimized, stats = minimize_with_reachability(circuit)
        assert stats["bdd_size_after"] <= stats["bdd_size_before"]
        assert check_equivalence(circuit, minimized).holds

    def test_forward_backward_consistency(self):
        circuit = s27()
        forward = ENGINES["bfv"](circuit)
        space = forward.extra["space"]
        reached = forward.extra["reached"]
        # every reached state is backward-reachable-from-itself trivially;
        # stronger: the initial state reaches each reached state, so each
        # reached state's backward cone contains the initial state.
        declaration = list(circuit.latches)
        index = {net: i for i, net in enumerate(space.state_order)}
        for point in reached.enumerate():
            as_decl = tuple(point[index[net]] for net in declaration)
            backward = backward_reachability(circuit, [as_decl])
            chi = backward.extra["backward_chi"]
            init_assignment = dict(
                zip(backward.extra["space"].s_vars,
                    backward.extra["space"].initial_point)
            )
            assert backward.extra["space"].bdd.evaluate(
                chi, init_assignment
            )


class TestCounterPipeline:
    """Generator -> invariant -> synthesis -> STE on one design."""

    def test_full_chain(self):
        circuit = generators.mod_counter(4, 12)

        # invariant: the count stays below 12
        def below(state):
            return sum(state["s%d" % i] << i for i in range(4)) < 12

        check = check_invariant(circuit, state_predicate(below))
        assert check.holds

        # minimize against reachability, stay equivalent
        minimized, _ = minimize_with_reachability(circuit)
        assert check_equivalence(circuit, minimized).holds

        # resynthesize the minimized design once more: still equivalent
        again = resynthesize(minimized)
        assert check_equivalence(circuit, again).holds

        # STE on the minimized netlist: from the reset state (0), the
        # counter reads 1 after one cycle (no inputs to drive).
        bdd = BDD([])
        engine = STE(bdd, minimized)
        antecedent = is0("s0") & is0("s1") & is0("s2") & is0("s3")
        consequent = next_(is1("s0") & is0("s1"))
        assert engine.check(antecedent, consequent).passes


class TestPersistInterop:
    def test_reached_sets_transfer_between_engines(self):
        # Reach with BFV engine, persist, reload, and compare against
        # the TR engine's chi on a *shared* fresh manager.
        circuit = generators.johnson(5)
        bfv_run = ENGINES["bfv"](circuit)
        space = bfv_run.extra["space"]
        buffer = io.StringIO()
        persist.dump_functions(
            space.bdd, {}, buffer, {"reached": bfv_run.extra["reached"]}
        )
        buffer.seek(0)
        fresh, _, vectors = persist.load_functions(buffer)
        reloaded = vectors["reached"]
        tr_run = ENGINES["tr"](circuit)
        assert reloaded.count() == tr_run.num_states == 10

"""Coverage for corners not exercised elsewhere: errors, dot, edge cases."""

import pytest

from repro import errors
from repro.bdd import BDD
from repro.bdd.dot import to_dot_shared
from repro.bfv import BFV, from_characteristic
from repro.circuits import generators as gen
from repro.order import order_for

from .conftest import chi_of


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "BDDError",
            "VariableError",
            "BFVError",
            "EmptySetError",
            "CircuitError",
            "BenchFormatError",
            "ResourceLimitError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_resource_limit_kind(self):
        error = errors.ResourceLimitError("memory", "boom")
        assert error.kind == "memory"
        assert "boom" in str(error)

    def test_variable_error_is_bdd_error(self):
        assert issubclass(errors.VariableError, errors.BDDError)

    def test_bench_error_is_circuit_error(self):
        assert issubclass(errors.BenchFormatError, errors.CircuitError)


class TestSharedDot:
    def test_multiple_roots_one_drawing(self):
        bdd = BDD(["a", "b", "c"])
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        g = bdd.cofactor(f, "a", True)  # f's own sub-node: fully shared
        dot = to_dot_shared(bdd, [f, g], name="pair")
        assert dot.startswith("digraph pair")
        assert dot.count('label="f') >= 2  # two root markers f0, f1
        # the shared b-node is drawn exactly once
        assert dot.count('label="b"') == 1

    def test_bfv_rendering(self):
        bdd = BDD(["v0", "v1"])
        vec = from_characteristic(
            bdd, (0, 1), chi_of(bdd, (0, 1), [(True, False), (False, False)])
        )
        dot = to_dot_shared(bdd, vec.components, name="vec")
        assert "digraph vec" in dot


class TestOrderEdgeCases:
    def test_input_free_circuit(self):
        circuit = gen.lfsr(4)  # no primary inputs
        for family in ("S1", "S2", "P", "O"):
            slots = order_for(circuit, family)
            assert set(slots) == set(circuit.latches)

    def test_single_latch(self):
        from repro.circuits.netlist import Circuit

        circuit = Circuit("one")
        circuit.add_input("x")
        circuit.add_latch("q", "x")
        circuit.validate()
        slots = order_for(circuit, "S1")
        assert set(slots) == {"x", "q"}


class TestVersionAndPackaging:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_top_level_exports(self):
        import repro

        assert hasattr(repro, "BDD")
        assert hasattr(repro, "Function")


class TestBFVEdgeCases:
    def test_width_zero_universe(self):
        # Zero-width vectors: the one-point space of the empty tuple.
        bdd = BDD([])
        universe = BFV.universe(bdd, ())
        assert universe.width == 0
        assert list(universe.enumerate()) == [()]
        assert universe.count() == 1
        assert universe.contains(())

    def test_width_zero_ops(self):
        from repro.bfv import intersect, union

        bdd = BDD([])
        universe = BFV.universe(bdd, ())
        empty = BFV.empty(bdd, ())
        assert union(universe, universe) == universe
        assert union(empty, universe) == universe
        assert intersect(universe, universe) == universe
        assert intersect(universe, empty).is_empty

    def test_single_bit_sets(self):
        bdd = BDD(["v"])
        zero = BFV.point(bdd, (0,), (False,))
        one = BFV.point(bdd, (0,), (True,))
        both = zero.union(one)
        assert both == BFV.universe(bdd, (0,))
        assert zero.intersect(one).is_empty
        assert both.smooth(0) == both
        assert both.consensus(0) == both
        assert zero.consensus(0).is_empty


class TestManagerMisc:
    def test_clear_cache(self):
        bdd = BDD(["a", "b"])
        bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.cache_stats()["total"]["entries"] > 0
        bdd.clear_cache()
        assert bdd.cache_stats()["total"]["entries"] == 0

    def test_repr(self):
        bdd = BDD(["a"])
        assert "vars=1" in repr(bdd)

    def test_node_limit_none_by_default(self):
        assert BDD(["a"]).node_limit is None

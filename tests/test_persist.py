"""Persistence tests: function and BFV round-trips across managers."""

import io
import random

import pytest

from repro import persist
from repro.bdd import BDD, parse
from repro.bfv import BFV, from_characteristic
from repro.errors import ReproError

from .conftest import build_expr, chi_of, random_expr, truth_table


def roundtrip(bdd, functions, vectors=None, target=None):
    buffer = io.StringIO()
    persist.dump_functions(bdd, functions, buffer, vectors)
    buffer.seek(0)
    return persist.load_functions(buffer, target)


class TestFunctionRoundTrips:
    def test_simple(self):
        bdd = BDD(["a", "b", "c"])
        f = parse(bdd, "a & (b | !c)")
        loaded_bdd, functions, _ = roundtrip(bdd, {"f": f})
        assert loaded_bdd.order_names == ["a", "b", "c"]
        g = functions["f"]
        for env in (
            {"a": True, "b": False, "c": False},
            {"a": True, "b": False, "c": True},
            {"a": False, "b": True, "c": False},
        ):
            assert loaded_bdd.evaluate(g, env) == bdd.evaluate(f, env)

    def test_constants(self):
        bdd = BDD(["a"])
        loaded, functions, _ = roundtrip(
            bdd, {"t": bdd.true, "f": bdd.false}
        )
        assert functions["t"] == loaded.true
        assert functions["f"] == loaded.false

    def test_random_functions(self):
        rng = random.Random(12)
        for _ in range(20):
            bdd = BDD(["x%d" % i for i in range(5)])
            f = build_expr(bdd, random_expr(rng, 5, 4))
            g = build_expr(bdd, random_expr(rng, 5, 4))
            loaded, functions, _ = roundtrip(bdd, {"f": f, "g": g})
            assert truth_table(loaded, functions["f"], 5) == truth_table(
                bdd, f, 5
            )
            assert truth_table(loaded, functions["g"], 5) == truth_table(
                bdd, g, 5
            )

    def test_into_existing_manager_with_different_order(self):
        bdd = BDD(["a", "b", "c"])
        f = parse(bdd, "(a <-> b) & c")
        target = BDD(["c", "zz", "a"])  # different order, extra/missing vars
        loaded, functions, _ = roundtrip(bdd, {"f": f}, target=target)
        assert loaded is target
        assert "b" in target.order_names  # re-declared
        g = functions["f"]
        env = {"a": True, "b": True, "c": True}
        assert target.evaluate(g, env) is True
        env["b"] = False
        assert target.evaluate(g, env) is False

    def test_loaded_roots_survive_gc(self):
        bdd = BDD(["a", "b"])
        f = parse(bdd, "a ^ b")
        loaded, functions, _ = roundtrip(bdd, {"f": f})
        loaded.collect_garbage()
        assert loaded.evaluate(functions["f"], {"a": True, "b": False})


class TestBFVRoundTrips:
    def test_vector(self):
        bdd = BDD(["v0", "v1", "v2"])
        points = {(True, False, True), (False, True, True), (False, False, False)}
        vec = from_characteristic(
            bdd, (0, 1, 2), chi_of(bdd, (0, 1, 2), points)
        )
        loaded, _, vectors = roundtrip(bdd, {}, {"reached": vec})
        out = vectors["reached"]
        assert set(out.enumerate()) == points
        out.check_structure()

    def test_empty_vector(self):
        bdd = BDD(["v0", "v1"])
        empty = BFV.empty(bdd, (0, 1))
        loaded, _, vectors = roundtrip(bdd, {}, {"e": empty})
        assert vectors["e"].is_empty

    def test_reached_set_cache_scenario(self, tmp_path):
        # The intended use: cache a reachability result on disk.
        from repro.circuits import generators
        from repro.reach import bfv_reachability

        circuit = generators.johnson(4)
        result = bfv_reachability(circuit)
        space = result.extra["space"]
        reached = result.extra["reached"]
        path = tmp_path / "reached.bdd"
        persist.save(
            str(path), space.bdd, vectors={"reached": reached}
        )
        loaded_bdd, _, vectors = persist.load(str(path))
        assert vectors["reached"].count() == result.num_states


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ReproError):
            persist.load_functions(io.StringIO("garbage\n"))

    def test_missing_vars(self):
        with pytest.raises(ReproError):
            persist.load_functions(io.StringIO("repro-bdd 1\nnope\n"))

    def test_dangling_reference(self):
        text = "repro-bdd 1\nvars a\nfunc f 7\n"
        with pytest.raises(ReproError):
            persist.load_functions(io.StringIO(text))

    def test_unknown_record(self):
        text = "repro-bdd 1\nvars a\nblob x\n"
        with pytest.raises(ReproError):
            persist.load_functions(io.StringIO(text))

    def test_bad_name(self):
        bdd = BDD(["a"])
        with pytest.raises(ReproError):
            persist.dump_functions(bdd, {"two words": bdd.true}, io.StringIO())


class TestErrorLineNumbers:
    """PersistError pinpoints the offending line of a damaged file."""

    def load_error(self, text):
        from repro.errors import PersistError

        with pytest.raises(PersistError) as info:
            persist.load_functions(io.StringIO(text))
        return info.value

    def test_bad_magic_is_line_one(self):
        error = self.load_error("garbage\n")
        assert error.line == 1
        assert "line 1" in str(error)

    def test_missing_vars_is_line_two(self):
        error = self.load_error("repro-bdd 1\nnope\n")
        assert error.line == 2

    def test_malformed_node_reports_its_line(self):
        error = self.load_error("repro-bdd 1\nvars a\nnode 2 a 0\n")
        assert error.line == 3
        assert "line 3" in str(error)

    def test_non_integer_root_reports_its_line(self):
        text = "repro-bdd 1\nvars a\nnode 2 a 0 1\nfunc f seven\n"
        error = self.load_error(text)
        assert error.line == 4

    def test_dangling_reference_reports_its_line(self):
        text = "repro-bdd 1\nvars a\nnode 2 a 0 1\nfunc f 9\n"
        error = self.load_error(text)
        assert error.line == 4
        assert "unknown node 9" in str(error)

    def test_unknown_record_reports_its_line(self):
        text = "repro-bdd 1\nvars a\nnode 2 a 0 1\nblob x\n"
        error = self.load_error(text)
        assert error.line == 4


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, tmp_path):
        bdd = BDD(["a", "b"])
        f = parse(bdd, "a & b")
        path = tmp_path / "out.bdd"
        persist.save(str(path), bdd, functions={"f": f})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bdd"]

    def test_failed_save_preserves_previous_contents(self, tmp_path):
        path = tmp_path / "out.bdd"
        path.write_text("previous contents\n")
        bdd = BDD(["a"])
        with pytest.raises(ReproError):
            persist.save(str(path), bdd, functions={"bad name": bdd.true})
        assert path.read_text() == "previous contents\n"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bdd"]

    def test_atomic_write_discards_on_exception(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with persist.atomic_write(str(path)) as handle:
                handle.write("half-written")
                raise RuntimeError("crash mid-save")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

"""Synthesis tests: BDD -> gates, resynthesis, reachability minimization."""

import itertools
import random

import pytest

from repro.bdd import BDD, parse
from repro.circuits import generators as gen
from repro.circuits.iscas import s27
from repro.circuits.netlist import Circuit
from repro.errors import ReproError
from repro.mc import check_equivalence
from repro.sim import ConcreteSimulator, explicit_reachable
from repro.synth import bdd_to_gates, minimize_with_reachability, resynthesize

from .conftest import build_expr, random_expr


class TestBddToGates:
    def _check(self, bdd, node, names):
        circuit = Circuit("c")
        net_of_var = {}
        for name in names:
            circuit.add_input(name)
            net_of_var[bdd.var_index(name)] = name
        out = bdd_to_gates(bdd, node, circuit, net_of_var, "f")
        circuit.add_output(out)
        circuit.validate()
        simulator = ConcreteSimulator(circuit)
        for values in itertools.product([False, True], repeat=len(names)):
            env = dict(zip(names, values))
            expected = bdd.evaluate(node, env)
            assert simulator.outputs((), env)[out] == expected
        return circuit

    def test_random_functions(self):
        rng = random.Random(21)
        names = ["x%d" % i for i in range(5)]
        for _ in range(25):
            bdd = BDD(names)
            node = build_expr(bdd, random_expr(rng, 5, 4))
            self._check(bdd, node, names)

    def test_constants(self):
        bdd = BDD(["a"])
        circuit = Circuit("c")
        circuit.add_input("a")
        net_true = bdd_to_gates(bdd, bdd.true, circuit, {0: "a"}, "t")
        net_false = bdd_to_gates(bdd, bdd.false, circuit, {0: "a"}, "f")
        circuit.add_output(net_true)
        circuit.add_output(net_false)
        circuit.validate()
        simulator = ConcreteSimulator(circuit)
        for value in (False, True):
            outs = simulator.outputs((), {"a": value})
            assert outs[net_true] is True
            assert outs[net_false] is False

    def test_sharing_across_roots(self):
        bdd = BDD(["a", "b", "c"])
        f = parse(bdd, "(a & b) | c")
        g = parse(bdd, "(a & b) ^ c")
        circuit = Circuit("c")
        net_of_var = {}
        for name in ("a", "b", "c"):
            circuit.add_input(name)
            net_of_var[bdd.var_index(name)] = name
        memo = {}
        out_f = bdd_to_gates(bdd, f, circuit, net_of_var, "s", memo)
        out_g = bdd_to_gates(bdd, g, circuit, net_of_var, "s", memo)
        shared_gates = circuit.num_gates
        circuit.add_output(out_f)
        circuit.add_output(out_g)
        circuit.validate()
        # Re-emitting without a shared memo must cost strictly more.
        fresh = Circuit("fresh")
        for name in ("a", "b", "c"):
            fresh.add_input(name)
        bdd_to_gates(bdd, f, fresh, net_of_var, "p")
        bdd_to_gates(bdd, g, fresh, net_of_var, "q")
        assert shared_gates < fresh.num_gates

    def test_unmapped_variable_rejected(self):
        bdd = BDD(["a", "b"])
        node = parse(bdd, "a & b")
        circuit = Circuit("c")
        circuit.add_input("a")
        with pytest.raises(ReproError):
            bdd_to_gates(bdd, node, circuit, {0: "a"}, "f")


class TestResynthesize:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gen.counter(3),
            lambda: gen.lfsr(4),
            lambda: gen.fifo_controller(1),
            lambda: gen.traffic_light(),
            s27,
        ],
        ids=["counter", "lfsr", "fifo", "traffic", "s27"],
    )
    def test_equivalent_to_original(self, factory):
        original = factory()
        rebuilt = resynthesize(original)
        assert rebuilt.initial_state == original.initial_state
        result = check_equivalence(original, rebuilt)
        assert result.holds, result.counterexample

    def test_interface_preserved(self):
        original = gen.fifo_controller(1)
        rebuilt = resynthesize(original)
        assert rebuilt.inputs == original.inputs
        assert rebuilt.outputs == original.outputs
        assert list(rebuilt.latches) == list(original.latches)


class TestMinimizeWithReachability:
    def test_sequentially_equivalent(self):
        # mod-10 counter: 6 unreachable states are don't-cares.
        original = gen.mod_counter(4, 10)
        minimized, stats = minimize_with_reachability(original)
        assert stats["bdd_size_after"] <= stats["bdd_size_before"]
        result = check_equivalence(original, minimized)
        assert result.holds

    def test_reachable_set_unchanged(self):
        original = gen.johnson(4)  # only 8 of 16 states reachable
        minimized, _stats = minimize_with_reachability(original)
        assert explicit_reachable(minimized) == explicit_reachable(original)

    def test_genuinely_smaller_on_sparse_circuits(self):
        # mod-17 counter: wrap comparator simplifies on the reachable
        # value range (unreachable encodings are don't-cares).
        original = gen.mod_counter(5, 17)
        minimized, stats = minimize_with_reachability(original)
        assert stats["bdd_size_after"] < stats["bdd_size_before"]
        assert check_equivalence(original, minimized).holds

    def test_budget_failure_raises(self):
        from repro.reach import ReachLimits

        with pytest.raises(ReproError):
            minimize_with_reachability(
                gen.counter(4), limits=ReachLimits(max_seconds=0.0)
            )

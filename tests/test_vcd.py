"""VCD waveform export tests (parse-back and content checks)."""

import io
import re

import pytest

from repro.circuits import generators as gen
from repro.errors import ReproError
from repro.mc import check_invariant, never_all, output_never_high
from repro.vcd import dump_waveform, save_trace, trace_to_vcd


def parse_vcd(text):
    """Minimal VCD reader: returns {name: [(time, value), ...]}."""
    id_of = {}
    for match in re.finditer(r"\$var wire 1 (\S+) (\S+) \$end", text):
        id_of[match.group(1)] = match.group(2)
    changes = {name: [] for name in id_of.values()}
    time = 0
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("#"):
            time = int(line[1:])
        elif line and line[0] in "01" and line[1:] in id_of:
            changes[id_of[line[1:]]].append((time, line[0] == "1"))
    return changes


def value_at(changes, time):
    value = False
    for t, v in changes:
        if t > time:
            break
        value = v
    return value


class TestDumpWaveform:
    def test_basic_structure(self):
        buffer = io.StringIO()
        dump_waveform(
            buffer,
            {"a": [False, True, True], "b": [True, True, False]},
        )
        text = buffer.getvalue()
        assert "$timescale 1 ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text
        changes = parse_vcd(text)
        assert value_at(changes["a"], 0) is False
        assert value_at(changes["a"], 1) is True
        assert value_at(changes["b"], 2) is False

    def test_only_toggles_emitted(self):
        buffer = io.StringIO()
        dump_waveform(buffer, {"x": [True, True, True, False]})
        text = buffer.getvalue()
        # exactly two value-change lines for x: initial 1 and the drop
        assert len(re.findall(r"^[01]", text, re.MULTILINE)) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            dump_waveform(io.StringIO(), {"a": [True], "b": [True, False]})

    def test_many_signals_unique_ids(self):
        buffer = io.StringIO()
        dump_waveform(
            buffer, {"s%d" % i: [bool(i % 2)] for i in range(200)}
        )
        ids = re.findall(r"\$var wire 1 (\S+) ", buffer.getvalue())
        assert len(set(ids)) == 200


class TestTraceExport:
    def test_counterexample_waveform(self):
        circuit = gen.counter(3)
        result = check_invariant(circuit, never_all(circuit.state_nets))
        buffer = io.StringIO()
        trace_to_vcd(circuit, result.counterexample, buffer)
        changes = parse_vcd(buffer.getvalue())
        # the enable input is high throughout the shortest trace
        assert value_at(changes["in.en"], 0) is True
        # the final state (time == len(trace)) is all ones
        final = len(result.counterexample)
        for i in range(3):
            assert value_at(changes["state.s%d" % i], final) is True

    def test_output_signals_included(self):
        circuit = gen.mod_counter(3, 5)
        result = check_invariant(circuit, output_never_high("wrap"))
        buffer = io.StringIO()
        trace_to_vcd(circuit, result.counterexample, buffer)
        changes = parse_vcd(buffer.getvalue())
        assert "out.wrap" in changes

    def test_save_to_file(self, tmp_path):
        circuit = gen.shift_register(3)

        def never_101(state):
            return [state["s%d" % i] for i in range(3)] != [True, False, True]

        from repro.mc import state_predicate

        result = check_invariant(circuit, state_predicate(never_101))
        path = tmp_path / "bug.vcd"
        save_trace(circuit, result.counterexample, str(path))
        text = path.read_text()
        assert "$var wire 1" in text
        assert "state.s2" in text
